package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Small but non-trivial scale: big enough for the predictors to train and
// the paper's trends to emerge, small enough for CI.
func testOpts() Options {
	return Options{Insts: 30_000}
}

// fewBench trims to three representative benchmarks for the slowest
// experiments.
func fewBench() Options {
	o := testOpts()
	o.Benchmarks = []string{"gzip", "vpr", "mcf"}
	return o
}

func TestFigure2Shape(t *testing.T) {
	r, err := Figure2(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ave := r.Table.ColumnMeans()
	// Headline: idealized schedules stay close to monolithic, and the
	// penalty grows with cluster count.
	if ave[0] > 1.02 || ave[1] > 1.04 || ave[2] > 1.08 {
		t.Errorf("idealized averages too high: %v", ave)
	}
	if ave[0] > ave[2]+1e-9 {
		t.Errorf("idealized penalty should grow with clusters: %v", ave)
	}
	for i := 0; i < r.Table.Rows(); i++ {
		for c := 0; c < 3; c++ {
			if v := r.Table.Value(i, c); v < 0.999 {
				t.Errorf("%s col %d: clustered schedule beat monolithic (%v)",
					r.Table.Label(i), c, v)
			}
		}
	}
	if r.DyadicCrossFrac <= 0 || r.DyadicCrossFrac >= 1 {
		t.Errorf("dyadic share = %v", r.DyadicCrossFrac)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "AVE") {
		t.Error("render missing AVE row")
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ave := r.Table.ColumnMeans()
	// Focused steering loses noticeably more than the idealized study,
	// and more with more clusters (the paper's order-of-magnitude gap).
	if !(ave[0] < ave[1] && ave[1] < ave[2]) {
		t.Errorf("slowdown should grow with clusters: %v", ave)
	}
	if ave[2] < 1.05 {
		t.Errorf("8x1w focused slowdown implausibly small: %v", ave[2])
	}
	if ave[0] > 1.15 || ave[2] > 1.5 {
		t.Errorf("focused slowdowns implausibly large: %v", ave)
	}
}

func TestFigure5Conservation(t *testing.T) {
	opts := fewBench()
	r, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(opts.Benchmarks)*4 {
		t.Fatalf("expected %d rows, got %d", len(opts.Benchmarks)*4, len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Config == "1x8w" {
			// The monolithic bar must stack to exactly its own CPI = 1.0
			// after normalization (walk conservation).
			if math.Abs(row.Total()-1) > 0.02 {
				t.Errorf("%s monolithic bar totals %v, want 1.0", row.Bench, row.Total())
			}
			if row.FwdDelay != 0 {
				t.Errorf("%s monolithic bar has forwarding delay", row.Bench)
			}
		}
		if row.Total() < 0.9 || row.Total() > 2.5 {
			t.Errorf("%s/%s bar total %v implausible", row.Bench, row.Config, row.Total())
		}
	}
	// Figure 6 data must be populated for the clustered configs.
	for _, cfg := range []string{"2x4w", "4x2w", "8x1w"} {
		if len(r.ContCritical[cfg]) != len(opts.Benchmarks) {
			t.Errorf("missing contention data for %s", cfg)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	r.RenderFigure6(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFigure6ForwardingGrowsWithClusters(t *testing.T) {
	r, err := Figure5(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	sum := func(cfg string) float64 {
		var s float64
		for _, v := range r.FwdLoadBal[cfg] {
			s += v
		}
		for _, v := range r.FwdDyadic[cfg] {
			s += v
		}
		return s
	}
	if !(sum("2x4w") <= sum("8x1w")) {
		t.Errorf("critical forwarding events should grow with clusters: %v vs %v",
			sum("2x4w"), sum("8x1w"))
	}
}

func TestFigure8Shape(t *testing.T) {
	r, err := Figure8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bins) != 20 {
		t.Fatalf("bins = %d", len(r.Bins))
	}
	var total float64
	for _, v := range r.Bins {
		if v < 0 {
			t.Fatalf("negative bin: %v", r.Bins)
		}
		total += v
	}
	if math.Abs(total-100) > 1 {
		t.Errorf("bins total %v, want 100", total)
	}
	// The paper's distribution is wide: a big never-critical mass plus a
	// spread of intermediate levels.
	if r.NotCriticalShare < 20 || r.NotCriticalShare > 95 {
		t.Errorf("not-critical share = %v%%", r.NotCriticalShare)
	}
	nonZero := 0
	for _, v := range r.Bins {
		if v > 0.1 {
			nonZero++
		}
	}
	if nonZero < 4 {
		t.Errorf("LoC distribution not wide enough: %v", r.Bins)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fields") {
		t.Error("render missing threshold annotation")
	}
}

func TestFigure14PoliciesHelp(t *testing.T) {
	opts := testOpts()
	r, err := Figure14(opts)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(cfg string, s Stack) float64 {
		var sum float64
		vals := r.NormCPI[cfg][s]
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}
	// On the 8-cluster machine the full stack must beat the focused
	// baseline clearly.
	if !(mean("8x1w", StackProactive) < mean("8x1w", StackFocused)) {
		t.Errorf("8x1w: proactive (%v) not better than focused (%v)",
			mean("8x1w", StackProactive), mean("8x1w", StackFocused))
	}
	if r.PenaltyReduction("8x1w") < 0.10 {
		t.Errorf("8x1w penalty reduction = %v, want >= 10%%", r.PenaltyReduction("8x1w"))
	}
	// LoC scheduling halves contention-related critical cycles on 8x1w
	// (the Section 4 headline): allow a loose factor.
	contFocused := 0.0
	contLoC := 0.0
	for i := range r.Cont["8x1w"][StackFocused] {
		contFocused += r.Cont["8x1w"][StackFocused][i]
		contLoC += r.Cont["8x1w"][StackLoC][i]
	}
	if contLoC > contFocused*0.85 {
		t.Errorf("LoC scheduling cut critical contention only %v -> %v", contFocused, contLoC)
	}
	// Global communication stays moderate and grows with clusters
	// (Section 2.1 reports 0.12/0.20/0.25).
	gv2, gv8 := r.GlobalValuesPerInst["2x4w"], r.GlobalValuesPerInst["8x1w"]
	if !(gv2 < gv8) || gv8 > 0.6 || gv2 <= 0 {
		t.Errorf("global values per inst: 2x4w=%v 8x1w=%v", gv2, gv8)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "penalty reduction") {
		t.Error("render missing penalty summary")
	}
}

func TestFigure15Shape(t *testing.T) {
	r, err := Figure15(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Available) == 0 {
		t.Fatal("no ILP buckets")
	}
	for i, a := range r.Available {
		if r.Achieved[i] > 8.0001 {
			t.Errorf("achieved ILP %v > machine width", r.Achieved[i])
		}
		if float64(a) < r.Achieved[i]-1e-9 && a <= 8 {
			t.Errorf("achieved %v exceeds available %d", r.Achieved[i], a)
		}
	}
	// Low available ILP is extracted nearly fully; high available ILP
	// saturates near the width.
	if low := r.AchievedAt(1); low < 0.5 {
		t.Errorf("achieved at available=1 is %v", low)
	}
	var shareSum float64
	for _, s := range r.CycleShare {
		shareSum += s
	}
	if math.Abs(shareSum-1) > 0.01 {
		t.Errorf("cycle shares sum to %v", shareSum)
	}
}

func TestLoCOracleOrdering(t *testing.T) {
	r, err := LoCOracle(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{PriOracle, PriLoC16, PriLoCUnlimited, PriBinary} {
		l := r.Loss[name]
		if len(l) != 3 {
			t.Fatalf("%s: %v", name, l)
		}
		for _, v := range l {
			if v < -0.001 || v > 0.5 {
				t.Errorf("%s loss %v implausible", name, v)
			}
		}
	}
	// Section 4's ordering on the narrowest machine: oracle <= LoC <=
	// binary (allow small tolerance for greedy-scheduler noise).
	o, l16, bin := r.Loss[PriOracle][2], r.Loss[PriLoC16][2], r.Loss[PriBinary][2]
	if o > l16+0.02 {
		t.Errorf("oracle (%v) should not lose to LoC16 (%v)", o, l16)
	}
	if l16 > bin+0.02 {
		t.Errorf("LoC16 (%v) should not lose to binary (%v)", l16, bin)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "oracle") {
		t.Error("render missing rows")
	}
}

func TestConsumersShape(t *testing.T) {
	r, err := Consumers(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if r.MCCNotFirst < 0 || r.MCCNotFirst > 1 ||
		r.StaticallyUnique <= 0 || r.StaticallyUnique > 1 ||
		r.Bimodal <= 0 || r.Bimodal > 1 {
		t.Errorf("consumer stats out of range: %+v", r)
	}
	// Section 6: a large share of static consumers behave bimodally and
	// most values have a statically-unique most critical consumer.
	if r.StaticallyUnique < 0.5 {
		t.Errorf("statically-unique fraction %v, want >= 0.5", r.StaticallyUnique)
	}
	if r.Bimodal < 0.5 {
		t.Errorf("bimodal fraction %v, want >= 0.5", r.Bimodal)
	}
}

func TestAttributeFigure2(t *testing.T) {
	r, err := AttributeFigure2(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Rows() != 4 { // 3 benchmarks + AVE
		t.Fatalf("rows = %d", r.Table.Rows())
	}
}

func TestConfigTableRenders(t *testing.T) {
	var buf bytes.Buffer
	ConfigTable(&buf)
	for _, want := range []string{"1x8w", "2x4w", "4x2w", "8x1w", "gshare"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("config table missing %q", want)
		}
	}
}

func TestUnknownBenchmarkPropagates(t *testing.T) {
	opts := Options{Benchmarks: []string{"nope"}, Insts: 1000}
	if _, err := Figure2(opts); err == nil {
		t.Error("Figure2 accepted unknown benchmark")
	}
	if _, err := Figure4(opts); err == nil {
		t.Error("Figure4 accepted unknown benchmark")
	}
	if _, err := runStack(opts.withDefaults(), "vpr", nil, 4, Stack("bogus"), false); err == nil {
		t.Error("runStack accepted unknown stack")
	}
}
