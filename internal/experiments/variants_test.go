package experiments

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/machine"
)

// fig4Grid is the geometry sweep Figure 4 batches per benchmark: the
// monolithic baseline plus the paper's clustered configurations.
func fig4Grid() []int { return append([]int{1}, clusterCounts...) }

// TestFigure4VariantBatchingWarmCache pins the engine-side contract of
// the fused sweep: the first Figure 4 pass computes every (bench,
// geometry) cell through one SimulateVariants batch per benchmark, and a
// second pass on the same engine is served entirely from cache — zero
// new simulations, byte-identical output.
func TestFigure4VariantBatchingWarmCache(t *testing.T) {
	eng := engine.New(engine.Config{Workers: runtime.NumCPU()})
	opts := Options{
		Insts:      8_000,
		Benchmarks: []string{"gzip", "vpr", "mcf"},
		Engine:     eng,
	}
	render := func() string {
		r, err := Figure4(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		return buf.String()
	}

	first := render()
	s1 := eng.Summary()
	wantCells := int64(len(opts.Benchmarks) * len(fig4Grid()))
	if s1.SimMisses != wantCells {
		t.Errorf("cold pass simulated %d cells, want %d (one per bench×geometry)",
			s1.SimMisses, wantCells)
	}

	second := render()
	s2 := eng.Summary()
	if s2.SimMisses != s1.SimMisses {
		t.Errorf("warm pass recomputed %d cells, want 0", s2.SimMisses-s1.SimMisses)
	}
	if got := s2.SimHits - s1.SimHits; got < wantCells {
		t.Errorf("warm pass served %d cache hits, want >= %d", got, wantCells)
	}
	if first != second {
		t.Errorf("warm pass output differs from cold pass:\n--- cold\n%s\n--- warm\n%s", first, second)
	}
}

// TestVariantBatchPartialWarm checks the mixed case: when some of a
// batch's geometries are already cached (here, from a solo submission),
// SimVariants computes only the misses and the results are identical to
// fully-solo runs.
func TestVariantBatchPartialWarm(t *testing.T) {
	grid := fig4Grid()
	mkOpts := func() Options {
		return Options{
			Insts:      6_000,
			Benchmarks: []string{"gzip"},
			Engine:     engine.New(engine.Config{Workers: runtime.NumCPU()}),
		}
	}

	// Reference: every cell simulated solo.
	solo := mkOpts()
	var want []machine.Result
	for _, k := range grid {
		a, err := sim(solo, "gzip", k, StackFocused, false, engine.NeedResult)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, a.Res)
	}

	// Warm one cell solo, then batch the full grid on the same engine.
	opts := mkOpts()
	if _, err := sim(opts, "gzip", grid[2], StackFocused, false, engine.NeedResult); err != nil {
		t.Fatal(err)
	}
	missesBefore := opts.Engine.Summary().SimMisses
	arts, err := simVariants(opts, "gzip", grid, StackFocused, false, engine.NeedResult)
	if err != nil {
		t.Fatal(err)
	}
	s := opts.Engine.Summary()
	if got, wantMiss := s.SimMisses-missesBefore, int64(len(grid)-1); got != wantMiss {
		t.Errorf("batch simulated %d cells, want %d (one was pre-warmed)", got, wantMiss)
	}
	for i := range arts {
		if !reflect.DeepEqual(arts[i].Res, want[i]) {
			t.Errorf("geometry %dx: batched result differs from solo:\nbatch: %+v\n solo: %+v",
				grid[i], arts[i].Res, want[i])
		}
	}
}
