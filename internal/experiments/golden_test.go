package experiments

import (
	"fmt"
	"math"
	"testing"
)

// TestGoldenFigure4 pins exact headline values at a small, fixed scale.
// Every layer of the stack is deterministic (own PRNG, ordered
// reductions), so these values must reproduce bit-for-bit; a change here
// means simulator or policy behavior changed and EXPERIMENTS.md needs
// regenerating. Update the constants deliberately when that happens.
func TestGoldenFigure4(t *testing.T) {
	opts := Options{Insts: 20_000, Benchmarks: []string{"gzip", "vpr", "mcf"}}
	r, err := Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%.6f %.6f %.6f",
		r.Table.Value(0, 0), r.Table.Value(1, 1), r.Table.Value(2, 2))
	want := golden(t, "figure4", got)
	if got != want {
		t.Errorf("Figure 4 golden mismatch:\n got %s\nwant %s\n(behavior changed: regenerate EXPERIMENTS.md and update the golden)", got, want)
	}
}

func TestGoldenFigure2(t *testing.T) {
	opts := Options{Insts: 20_000, Benchmarks: []string{"gzip", "vpr", "mcf"}}
	r, err := Figure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%.6f %.6f %.6f",
		r.Table.Value(0, 2), r.Table.Value(1, 2), r.Table.Value(2, 2))
	want := golden(t, "figure2", got)
	if got != want {
		t.Errorf("Figure 2 golden mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenLoCOracle pins the Section 4 priority-knowledge study. The
// values were captured from the pre-engine direct listsched.Run path, so
// this gate also pins the fused ScheduleVariants + schedule-cache route
// to the original driver arithmetic.
func TestGoldenLoCOracle(t *testing.T) {
	opts := Options{Insts: 20_000, Benchmarks: []string{"gzip", "vpr", "mcf"}}
	r, err := LoCOracle(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%.6f %.6f %.6f %.6f %.6f",
		r.Loss[PriOracle][1], r.Loss[PriOracle][2], r.Loss[PriLoC16][2],
		r.Loss[PriLoCUnlimited][2], r.Loss[PriBinary][2])
	want := golden(t, "loc-oracle", got)
	if got != want {
		t.Errorf("LoC-oracle golden mismatch:\n got %s\nwant %s\n(scheduler or priority behavior changed: update deliberately)", got, want)
	}
}

// TestGoldenICostMatrix pins the InteractionMatrix output of the fused
// replay on the gcc/vpr goldens: the legacy fwd/contention pair plus a
// cross-component pairwise cell, in raw cycles. Any drift in the replay
// arithmetic (or the simulator behind it) shows up here exactly.
func TestGoldenICostMatrix(t *testing.T) {
	opts := Options{Insts: 20_000, Benchmarks: []string{"vpr", "gcc"}}
	r, err := ICost(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%d %d %d %d %d %d",
		r.TotalFwd, r.TotalCont, r.TotalBoth, r.TotalICost,
		r.Pair[2][3], // mem × br-mispredict interaction
		r.Pair[0][2]) // fwd × mem interaction
	want := golden(t, "icost-matrix", got)
	if got != want {
		t.Errorf("ICost matrix golden mismatch:\n got %s\nwant %s\n(replay or simulator behavior changed: update deliberately)", got, want)
	}
}

// goldenValues holds the pinned outputs. Keeping them in code (rather
// than testdata files) makes behavior changes visible in review.
var goldenValues = map[string]string{
	"figure4":      "1.079224 1.068801 1.083907",
	"figure2":      "1.019532 1.046488 1.000978",
	"loc-oracle":   "0.002831 0.022332 0.050405 0.050405 0.057492",
	"icost-matrix": "1494 4425 5868 -51 -2458 -8",
}

// golden returns the pinned value, or — when running with
// -run TestGolden -v after an intentional change — prints the new value
// to splice into goldenValues.
func golden(t *testing.T, key, got string) string {
	want, ok := goldenValues[key]
	if !ok {
		t.Fatalf("no golden value for %q; measured %q", key, got)
	}
	if want != got {
		t.Logf("measured %q = %q", key, got)
	}
	return want
}

// TestGoldenDeterminism double-checks that two identical invocations of a
// parallel driver agree exactly (the property the goldens rely on).
func TestGoldenDeterminism(t *testing.T) {
	opts := Options{Insts: 10_000, Benchmarks: []string{"vpr", "gzip"}}
	a, err := Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Table.Rows(); i++ {
		for c := 0; c < 3; c++ {
			if math.Abs(a.Table.Value(i, c)-b.Table.Value(i, c)) != 0 {
				t.Fatalf("row %d col %d differs between identical runs", i, c)
			}
		}
	}
}
