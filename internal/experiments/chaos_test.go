package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/faultinject"
)

// The chaos suite pins the robustness invariant from DESIGN.md: fault
// injection may cost retries, quarantines and recomputation, but it must
// never change a single rendered byte. Fault injection is process-wide,
// so these tests are deliberately sequential (no t.Parallel) — the Go
// test runner never overlaps a sequential test with any other test in
// the package.

// chaosOpts is a fig2+Figure-4 sized mini-sweep: small enough to run
// three times under fault injection, large enough to hit every artifact
// kind (traces, sims, analyses, schedules) across parallel workers.
func chaosOpts(eng *engine.Engine) Options {
	return Options{
		Insts:      6_000,
		Benchmarks: []string{"gzip", "mcf"},
		Engine:     eng,
	}
}

// renderChaosSweep runs the mini-sweep (Figure 2 list-scheduling limits
// + Figure 4 clustering stacks) on eng and returns the rendered bytes.
func renderChaosSweep(t *testing.T, eng *engine.Engine) string {
	t.Helper()
	var buf bytes.Buffer
	f2, err := Figure2(chaosOpts(eng))
	if err != nil {
		t.Fatalf("figure2: %v", err)
	}
	f2.Render(&buf)
	f4, err := Figure4(chaosOpts(eng))
	if err != nil {
		t.Fatalf("figure4: %v", err)
	}
	f4.Render(&buf)
	return buf.String()
}

// saveQuarantine copies the cache's quarantine directory to the path in
// CLUSTERSIM_CHAOS_ARTIFACT_DIR so CI can upload it when a chaos test
// fails. No-op when the env var is unset or nothing was quarantined.
func saveQuarantine(t *testing.T, cacheDir string) {
	dest := os.Getenv("CLUSTERSIM_CHAOS_ARTIFACT_DIR")
	if dest == "" || !t.Failed() {
		return
	}
	src := filepath.Join(cacheDir, "quarantine")
	entries, err := os.ReadDir(src)
	if err != nil {
		return
	}
	sub := filepath.Join(dest, t.Name())
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Logf("saving quarantine: %v", err)
		return
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			continue
		}
		os.WriteFile(filepath.Join(sub, e.Name()), data, 0o644)
	}
	t.Logf("quarantined entries saved to %s", sub)
}

// TestChaosDifferential is the headline acceptance test: the mini-sweep
// under 5%% fault injection (I/O errors, truncations, latency, worker
// panics) renders byte-identical output to the fault-free run. A second
// chaos pass reuses the first pass's cache dir, so entries torn by
// injected short writes must be caught by the CRC frame, quarantined and
// recomputed — still without changing a byte.
func TestChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the mini-sweep three times")
	}
	clean := renderChaosSweep(t, engine.New(engine.Config{Workers: runtime.NumCPU()}))

	cacheDir := filepath.Join(t.TempDir(), "cache")
	defer saveQuarantine(t, cacheDir)
	faultinject.Enable(42, 0.05)
	t.Cleanup(faultinject.Disable)

	for pass := 1; pass <= 2; pass++ {
		eng := engine.New(engine.Config{Workers: runtime.NumCPU(), CacheDir: cacheDir})
		got := renderChaosSweep(t, eng)
		if got != clean {
			t.Fatalf("chaos pass %d diverged from fault-free output:\n--- clean\n%s\n--- chaos\n%s",
				pass, clean, got)
		}
		s := eng.Summary()
		t.Logf("pass %d: %d faults injected, %d retries, %d quarantined, degraded=%v",
			pass, s.FaultsInjected, s.DiskRetries, s.Quarantines, s.DiskDegraded)
	}
	if faultinject.Snapshot().Total() == 0 {
		t.Fatal("chaos run injected no faults — the differential proved nothing")
	}
}

// TestChaosSurvivesFullFaultRate pushes the fault rate to 1 so every
// disk write fails and the cache deterministically degrades to
// memory-only mid-sweep; every simulation result must still match the
// fault-free run. It drives sim() directly rather than through a figure
// driver because at rate 1 every Map worker attempt would panic past the
// injected-panic retry cap.
func TestChaosSurvivesFullFaultRate(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the mini-sweep three times")
	}
	grid := []struct {
		bench    string
		clusters int
	}{
		{"gzip", 1}, {"gzip", 2}, {"gzip", 4}, {"gzip", 8},
		{"mcf", 1}, {"mcf", 2}, {"mcf", 4}, {"mcf", 8},
	}
	runGrid := func(eng *engine.Engine) []float64 {
		opts := chaosOpts(eng)
		ipcs := make([]float64, len(grid))
		for i, g := range grid {
			a, err := sim(opts, g.bench, g.clusters, StackFocused, false, engine.NeedResult)
			if err != nil {
				t.Fatalf("sim %s x%d: %v", g.bench, g.clusters, err)
			}
			ipcs[i] = a.Res.IPC()
		}
		return ipcs
	}
	clean := runGrid(engine.New(engine.Config{Workers: runtime.NumCPU()}))

	cacheDir := filepath.Join(t.TempDir(), "cache")
	defer saveQuarantine(t, cacheDir)
	faultinject.Enable(7, 1)
	t.Cleanup(faultinject.Disable)

	eng := engine.New(engine.Config{
		Workers: runtime.NumCPU(), CacheDir: cacheDir, DiskErrorBudget: 8,
	})
	chaos := runGrid(eng)
	for i := range grid {
		if chaos[i] != clean[i] {
			t.Errorf("%s x%d: IPC %v under chaos, %v fault-free",
				grid[i].bench, grid[i].clusters, chaos[i], clean[i])
		}
	}
	if s := eng.Summary(); !s.DiskDegraded {
		t.Errorf("rate 1 with budget 8 did not degrade the disk cache (faults=%d, retries=%d)",
			s.FaultsInjected, s.DiskRetries)
	}
}

// TestChaosVariantBatch drives the fused Figure-4 variant batch directly
// under 5%% injection with a disk cache: pass one computes every
// geometry through one SimulateVariants call per benchmark (injected
// store faults retried or absorbed), pass two re-reads the batch from
// the possibly-torn disk entries (CRC-quarantined entries recompute).
// Both passes must match the fault-free batch exactly.
func TestChaosVariantBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the mini-sweep three times")
	}
	grid := append([]int{1}, clusterCounts...)
	runBatch := func(eng *engine.Engine) []float64 {
		opts := chaosOpts(eng)
		var ipcs []float64
		for _, bench := range opts.Benchmarks {
			arts, err := simVariants(opts, bench, grid, StackFocused, false, engine.NeedResult)
			if err != nil {
				t.Fatalf("simVariants %s: %v", bench, err)
			}
			for _, a := range arts {
				ipcs = append(ipcs, a.Res.IPC())
			}
		}
		return ipcs
	}
	clean := runBatch(engine.New(engine.Config{Workers: runtime.NumCPU()}))

	cacheDir := filepath.Join(t.TempDir(), "cache")
	defer saveQuarantine(t, cacheDir)
	faultinject.Enable(42, 0.05)
	t.Cleanup(faultinject.Disable)

	for pass := 1; pass <= 2; pass++ {
		eng := engine.New(engine.Config{Workers: runtime.NumCPU(), CacheDir: cacheDir})
		chaos := runBatch(eng)
		for i := range clean {
			if chaos[i] != clean[i] {
				t.Fatalf("pass %d cell %d: IPC %v under chaos, %v fault-free",
					pass, i, chaos[i], clean[i])
			}
		}
		s := eng.Summary()
		t.Logf("pass %d: %d faults injected, %d retries, %d quarantined, misses=%d",
			pass, s.FaultsInjected, s.DiskRetries, s.Quarantines, s.SimMisses)
	}
	if faultinject.Snapshot().Total() == 0 {
		t.Fatal("chaos run injected no faults — the differential proved nothing")
	}
}

// TestKillAndResume simulates a killed sweep: a first process journals a
// subset of the work, then a second process resumes and runs the full
// sweep. The resumed run must serve the journaled keys without
// re-simulating (recomputing only what is missing) and render exactly
// what an uninterrupted run renders.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the mini-sweep three times")
	}
	journal := filepath.Join(t.TempDir(), "run.journal")

	// "Process one" completes only the gzip half of the sweep, then dies
	// (we just close the journal; an abrupt kill is the torn-tail case,
	// covered by the engine journal tests).
	e1 := engine.New(engine.Config{Workers: runtime.NumCPU()})
	if _, err := e1.OpenJournal(journal, false); err != nil {
		t.Fatal(err)
	}
	partial := chaosOpts(e1)
	partial.Benchmarks = []string{"gzip"}
	if _, err := Figure4(partial); err != nil {
		t.Fatal(err)
	}
	if err := e1.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	firstMisses := e1.Summary().SimMisses

	// "Process two" resumes the journal and runs the full sweep.
	e2 := engine.New(engine.Config{Workers: runtime.NumCPU()})
	restored, err := e2.OpenJournal(journal, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.CloseJournal()
	if restored == 0 {
		t.Fatal("resume restored nothing from the journal")
	}
	resumed := renderChaosSweep(t, e2)

	// Reference: the same sweep, uninterrupted, on one fresh engine.
	clean := renderChaosSweep(t, engine.New(engine.Config{Workers: runtime.NumCPU()}))
	if resumed != clean {
		t.Fatalf("resumed sweep diverged from uninterrupted sweep:\n--- clean\n%s\n--- resumed\n%s",
			clean, resumed)
	}

	s := e2.Summary()
	if s.ResumeHits == 0 {
		t.Error("resumed run never served a key from the journal")
	}
	// The resumed run recomputes only what process one never finished:
	// its misses plus the restored keys must cover no more than the
	// uninterrupted run's misses plus dedup slack — in practice, the
	// journaled gzip/Figure-4 keys must all be hits.
	if s.SimMisses+s.ResumeHits <= s.SimMisses {
		t.Errorf("inconsistent accounting: misses=%d resumeHits=%d", s.SimMisses, s.ResumeHits)
	}
	if int64(restored) < firstMisses {
		t.Errorf("journal restored %d keys but process one simulated %d", restored, firstMisses)
	}
	t.Logf("restored=%d resumeHits=%d misses=%d (first run misses=%d)",
		restored, s.ResumeHits, s.SimMisses, firstMisses)
}

// TestChaosEnvGate documents the CLUSTERSIM_CHAOS_* env contract used by
// the CI chaos job: the suite above enables injection explicitly, but a
// plain `go test` run under the env vars must also come up enabled.
func TestChaosEnvGate(t *testing.T) {
	t.Setenv("CLUSTERSIM_CHAOS_SEED", "9")
	t.Setenv("CLUSTERSIM_CHAOS_RATE", "0.25")
	if !faultinject.EnableFromEnv() {
		t.Fatal("EnableFromEnv ignored CLUSTERSIM_CHAOS_SEED/RATE")
	}
	t.Cleanup(faultinject.Disable)
	if !faultinject.Enabled() {
		t.Fatal("injection not enabled after EnableFromEnv")
	}
	fired := 0
	for i := 0; i < 400; i++ {
		if faultinject.Err(fmt.Sprintf("site-%d", i%4)) != nil {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("rate 0.25 never fired in 400 draws")
	}
}
