package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/xrand"
)

// GroupSteerResult quantifies Section 8's implementation concern: "even
// building a circuit that can do dependence-based steering of 8
// instructions per cycle is not likely to be easy — it suffers the same
// complexity-related problems incurred by register renaming logic
// (namely, intra-cycle dependences need to be taken into account)".
//
// The "serial" rows use the idealized steering stage (each instruction
// sees the placements of everything steered earlier in the cycle); the
// "group" rows steer the whole dispatch group against start-of-cycle
// state, as a simpler circuit would. The difference is the IPC cost of
// that circuit simplification.
type GroupSteerResult struct {
	Table *stats.Table // per benchmark: serial vs group normalized CPI (8x1w)
	// Delta is the mean extra normalized CPI of group steering.
	Delta float64
}

// GroupSteer runs the comparison on the 8x1w machine with
// stall-over-steer.
func GroupSteer(opts Options) (*GroupSteerResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Section 8: serial vs group (start-of-cycle) steering (8x1w, stall-over-steer)",
		Columns: []string{"serial", "group"}}
	rows, err := parBench(opts, func(bench string) ([2]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return [2]float64{}, err
		}
		base, err := runStack(opts, bench, tr, 1, StackLoC, false)
		if err != nil {
			return [2]float64{}, err
		}
		var out [2]float64
		for i, group := range []bool{false, true} {
			cfg := machine.NewConfig(8)
			cfg.FwdLatency = opts.Fwd
			cfg.SchedMode = machine.SchedLoC
			cfg.GroupSteering = group
			binary := predictor.NewDefaultBinary()
			loc := predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "gs-loc")))
			det := critpath.NewDetector(binary, loc)
			m, err := machine.New(cfg, tr, &steer.StallOverSteer{}, machine.Hooks{
				Binary: binary, LoC: loc, OnEpoch: det.OnEpoch,
			})
			if err != nil {
				return [2]float64{}, err
			}
			det.Bind(m)
			res := m.Run()
			out[i] = res.CPI() / base.res.CPI()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var deltas []float64
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i][0], rows[i][1])
		deltas = append(deltas, rows[i][1]-rows[i][0])
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	return &GroupSteerResult{Table: t, Delta: stats.Mean(deltas)}, nil
}

// Render writes the comparison.
func (r *GroupSteerResult) Render(w io.Writer) {
	r.Table.Render(w)
	fmt.Fprintf(w, "group steering costs %+.3f normalized CPI on average\n", r.Delta)
}
