package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"clustersim/internal/critpath"
	"clustersim/internal/listsched"
	"clustersim/internal/machine"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// The streaming differential gate: on every one of the paper's twelve
// benchmarks, the chunked on-disk trace path must be indistinguishable
// from the in-memory path at every layer that consumes traces —
// generation (instructions and dependence annotations), simulation
// (results and per-instruction event logs), critical-path analysis, and
// idealized list schedules. Any divergence here means cached CTR2
// entries would silently move the paper's figures.

const (
	gateInsts = 4000
	gateSeed  = 11
	// gateChunk is deliberately small and misaligned with nothing: every
	// benchmark's trace spans several chunks, so cross-chunk dependence
	// carry and chunk paging are exercised on each one.
	gateChunk = 512
)

// streamedTrace generates bench through the chunked writer into an
// in-memory CTR2 store and returns the store (windowed to 2 chunks, so
// paging is real) plus its fully materialized trace.
func streamedTrace(t *testing.T, bench string) (*trace.Store, *trace.Trace) {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.WriterOptions{ChunkLen: gateChunk})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.GenerateChunked(bench, gateInsts, gateSeed, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := trace.OpenBytes(buf.Bytes(), trace.OpenOptions{WindowChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	return st, tr
}

// runFocused runs one focused-stack simulation (the paper's baseline
// criticality machinery) and returns the machine for event/analysis
// comparison. The caller owns the machine.
func runFocused(t *testing.T, tr *trace.Trace) (*machine.Machine, machine.Result) {
	t.Helper()
	su, err := buildStack(Options{Fwd: 2}, "gate", 4, StackFocused, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(su.cfg, tr, su.pol, su.hooks)
	if err != nil {
		t.Fatal(err)
	}
	su.det.Bind(m)
	return m, m.Run()
}

func TestStreamingDifferentialAllBenchmarks(t *testing.T) {
	for _, bench := range workload.Names() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			want, err := workload.Generate(bench, gateInsts, gateSeed)
			if err != nil {
				t.Fatal(err)
			}
			st, got := streamedTrace(t, bench)
			defer st.Close()

			// Layer 1: generation. Instructions and dependence columns must
			// match element-for-element, including edges whose producer
			// lives in an earlier chunk.
			if got.Len() != want.Len() {
				t.Fatalf("streamed %d insts, in-memory %d", got.Len(), want.Len())
			}
			for i := range want.Insts {
				if got.Insts[i] != want.Insts[i] {
					t.Fatalf("inst %d differs: %+v != %+v", i, got.Insts[i], want.Insts[i])
				}
				if got.Deps[i] != want.Deps[i] {
					t.Fatalf("deps %d differ: %+v != %+v", i, got.Deps[i], want.Deps[i])
				}
			}

			// Layer 2: simulation. Results compare with == (no floats are
			// derived before comparison) and the event logs element-wise.
			mWant, resWant := runFocused(t, want)
			mGot, resGot := runFocused(t, got)
			if resGot != resWant {
				t.Fatalf("results differ:\nstreaming %+v\nin-memory %+v", resGot, resWant)
			}
			evWant, evGot := mWant.Events(), mGot.Events()
			if len(evGot) != len(evWant) {
				t.Fatalf("event logs differ in length: %d != %d", len(evGot), len(evWant))
			}
			for i := range evWant {
				if evGot[i] != evWant[i] {
					t.Fatalf("event %d differs: %+v != %+v", i, evGot[i], evWant[i])
				}
			}

			// Layer 3: critical-path analysis over the event logs.
			anWant, err := critpath.AnalyzeRun(mWant)
			if err != nil {
				t.Fatal(err)
			}
			anGot, err := critpath.AnalyzeRun(mGot)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(anGot, anWant) {
				t.Fatalf("critical-path analyses differ:\nstreaming %+v\nin-memory %+v", anGot, anWant)
			}

			// Layer 4: idealized list schedules harvested from the runs.
			schedOf := func(m *machine.Machine) *listsched.Schedule {
				in := listsched.FromMachineRun(m)
				s, err := listsched.Run(in, listsched.ConfigFor(machine.NewConfig(4)), listsched.NewOracle(in))
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			sWant, sGot := schedOf(mWant), schedOf(mGot)
			if !reflect.DeepEqual(sGot, sWant) {
				t.Fatalf("schedules differ: makespan %d != %d", sGot.Makespan, sWant.Makespan)
			}

			// Layer 5: window-segmented consumption. Paging windows out of
			// the chunked store must equal the same segmentation of the
			// in-memory trace, on a window size misaligned with the chunks.
			seg := func(int) (machine.Config, machine.SteerPolicy, machine.Hooks, error) {
				return machine.NewConfig(4), &steer.DepBased{}, machine.Hooks{}, nil
			}
			srGot, err := machine.SimulateStore(st, 777, seg)
			if err != nil {
				t.Fatal(err)
			}
			srWant, err := machine.SimulateSliced(want, 777, seg)
			if err != nil {
				t.Fatal(err)
			}
			if srGot != srWant {
				t.Fatalf("segmented runs differ:\nstreaming %+v\nin-memory %+v", srGot, srWant)
			}
		})
	}
}

// windowDigest is one window's derived products: the critical-path
// attribution and the idealized schedule makespan, the two downstream
// consumers the streaming path must feed unchanged.
type windowDigest struct {
	analysis *critpath.Analysis
	makespan int64
}

func digestWindow(t *testing.T, m *machine.Machine) windowDigest {
	t.Helper()
	an, err := critpath.AnalyzeRun(m)
	if err != nil {
		t.Fatal(err)
	}
	in := listsched.FromMachineRun(m)
	s, err := listsched.Run(in, listsched.ConfigFor(machine.NewConfig(4)), listsched.NewOracle(in))
	if err != nil {
		t.Fatal(err)
	}
	return windowDigest{analysis: an, makespan: s.Makespan}
}

func TestStreamingWindowedAnalysisAndSchedules(t *testing.T) {
	// Window-at-a-time critpath and listsched consumption: analyses and
	// schedules computed from each streamed window's machine (via the
	// SimulateStoreObserved hook) must equal the same pipeline over
	// sliced in-memory windows.
	want, err := workload.Generate("parser", gateInsts, gateSeed)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := streamedTrace(t, "parser")
	defer st.Close()

	const window = int64(900) // misaligned with gateChunk on purpose
	seg := func(int) (machine.Config, machine.SteerPolicy, machine.Hooks, error) {
		return machine.NewConfig(4), &steer.DepBased{}, machine.Hooks{}, nil
	}
	var got []windowDigest
	if _, err := machine.SimulateStoreObserved(st, window, seg, func(segIdx int, base int64, m *machine.Machine) error {
		got = append(got, digestWindow(t, m))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wantDigests []windowDigest
	for lo := int64(0); lo < int64(want.Len()); lo += window {
		hi := lo + window
		if hi > int64(want.Len()) {
			hi = int64(want.Len())
		}
		wtr := trace.Rebuild(want.Insts[lo:hi])
		m, err := machine.New(machine.NewConfig(4), wtr, &steer.DepBased{}, machine.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		wantDigests = append(wantDigests, digestWindow(t, m))
	}

	if len(got) != len(wantDigests) {
		t.Fatalf("%d streamed windows, %d in-memory", len(got), len(wantDigests))
	}
	for i := range wantDigests {
		if got[i].makespan != wantDigests[i].makespan {
			t.Fatalf("window %d: makespan %d != %d", i, got[i].makespan, wantDigests[i].makespan)
		}
		if !reflect.DeepEqual(got[i].analysis, wantDigests[i].analysis) {
			t.Fatalf("window %d: critical-path analyses differ", i)
		}
	}
}

// TestStreamingDiskRoundTripDifferential closes the loop through the
// actual file system: GenerateToFile → Open → Load must reproduce the
// in-memory generation bit-for-bit (compressed and uncompressed).
func TestStreamingDiskRoundTripDifferential(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			want, err := workload.Generate("twolf", gateInsts, gateSeed)
			if err != nil {
				t.Fatal(err)
			}
			path := t.TempDir() + "/t.ctr"
			opts := trace.WriterOptions{ChunkLen: gateChunk, Compress: compress}
			if err := workload.GenerateToFile("twolf", gateInsts, gateSeed, path, opts); err != nil {
				t.Fatal(err)
			}
			st, err := trace.Open(path, trace.OpenOptions{WindowChunks: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			got, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("lengths differ: %d != %d", got.Len(), want.Len())
			}
			for i := range want.Insts {
				if got.Insts[i] != want.Insts[i] || got.Deps[i] != want.Deps[i] {
					t.Fatalf("inst %d diverged after disk round-trip", i)
				}
			}
		})
	}
}
