package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/engine"
	"clustersim/internal/machine"
	"clustersim/internal/stats"
)

// Figure8Result reproduces Figure 8: the distribution of LoC values,
// weighted by dynamic instructions and averaged across benchmarks.
type Figure8Result struct {
	// Bins holds the percentage of dynamic instructions per 5%-wide LoC
	// bin (20 bins).
	Bins []float64
	// NotCriticalShare is the share of dynamic instructions below the
	// binary predictor's effective threshold (the paper's dashed line at
	// 1-in-8 = 12.5%).
	NotCriticalShare float64
}

// Figure8 measures observed LoC distributions on the 4x2w machine under
// focused steering (the configuration Section 4 analyzes).
func Figure8(opts Options) (*Figure8Result, error) {
	opts = opts.withDefaults()
	const bins = 20
	hists, err := parBench(opts, func(bench string) ([]float64, error) {
		out, err := sim(opts, bench, 4, StackFocused, true, engine.NeedExact)
		if err != nil {
			return nil, err
		}
		return out.Exact().Histogram(bins), nil
	})
	if err != nil {
		return nil, err
	}
	acc := make([]float64, bins)
	for _, h := range hists {
		for i := range acc {
			acc[i] += h[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(len(opts.Benchmarks))
	}
	r := &Figure8Result{Bins: acc}
	// The Fields threshold (1/8 criticality) falls inside the 10–15%
	// bin; count bins strictly below 12.5% plus half of the bin that
	// straddles it.
	for i, v := range acc {
		lo := float64(i) * 5
		hi := lo + 5
		switch {
		case hi <= 12.5:
			r.NotCriticalShare += v
		case lo < 12.5:
			r.NotCriticalShare += v * (12.5 - lo) / 5
		}
	}
	return r, nil
}

// Render writes the LoC histogram.
func (r *Figure8Result) Render(w io.Writer) {
	labels := make([]string, len(r.Bins))
	for i := range labels {
		labels[i] = fmt.Sprintf("%d-%d%%", i*5, i*5+5)
	}
	stats.Histogram(w, "Figure 8: distribution of LoC values (% dynamic instructions)", labels, r.Bins, 50)
	fmt.Fprintf(w, "below Fields binary threshold (12.5%%): %.0f%% of dynamic instructions\n",
		r.NotCriticalShare)
}

// Figure14Result reproduces Figure 14: the cumulative policy stacks on
// each clustered configuration, normalized to a monolithic machine with
// LoC-based scheduling, with the critical-path share of forwarding delay
// and contention per bar.
type Figure14Result struct {
	// NormCPI[config][stack] -> per-benchmark normalized CPIs. Stacks
	// follow Stacks(); the proactive stack is measured on every
	// configuration but, as in the paper, only expected to help 8x1w.
	NormCPI map[string]map[Stack][]float64
	// Fwd and Cont are critical-path forwarding/contention in normalized
	// CPI units per bar (matching Figure 14's shading).
	Fwd  map[string]map[Stack][]float64
	Cont map[string]map[Stack][]float64
	// GlobalValuesPerInst per config for the final stack (Section 2.1's
	// 0.12/0.20/0.25 figures).
	GlobalValuesPerInst map[string]float64
	Benchmarks          []string
}

// Figure14 runs the full policy progression.
func Figure14(opts Options) (*Figure14Result, error) {
	opts = opts.withDefaults()
	r := &Figure14Result{
		NormCPI:             map[string]map[Stack][]float64{},
		Fwd:                 map[string]map[Stack][]float64{},
		Cont:                map[string]map[Stack][]float64{},
		GlobalValuesPerInst: map[string]float64{},
		Benchmarks:          opts.Benchmarks,
	}
	type cell struct {
		name      string
		stack     Stack
		normCPI   float64
		fwd, cont float64
		gv        float64
		haveGV    bool
	}
	cells, err := parBench(opts, func(bench string) ([]cell, error) {
		// Normalization baseline: monolithic with LoC-based scheduling.
		base, err := sim(opts, bench, 1, StackLoC, false, engine.NeedResult)
		if err != nil {
			return nil, err
		}
		baseCPI := base.Res.CPI()
		var out []cell
		for _, k := range clusterCounts {
			for _, stack := range Stacks() {
				a, err := analysis(opts, bench, k, stack)
				if err != nil {
					return nil, err
				}
				run, err := sim(opts, bench, k, stack, false, engine.NeedResult)
				if err != nil {
					return nil, err
				}
				norm := 1.0 / (float64(run.Res.Insts) * baseCPI)
				c := cell{
					name:    run.Res.ConfigName,
					stack:   stack,
					normCPI: run.Res.CPI() / baseCPI,
					fwd:     float64(a.Breakdown.FwdDelay) * norm,
					cont:    float64(a.Breakdown.Contention) * norm,
				}
				if stack == StackProactive {
					c.gv = run.Res.GlobalValuesPerInst()
					c.haveGV = true
				}
				out = append(out, c)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	gvAccum := map[string][]float64{}
	for _, benchCells := range cells {
		for _, c := range benchCells {
			if r.NormCPI[c.name] == nil {
				r.NormCPI[c.name] = map[Stack][]float64{}
				r.Fwd[c.name] = map[Stack][]float64{}
				r.Cont[c.name] = map[Stack][]float64{}
			}
			r.NormCPI[c.name][c.stack] = append(r.NormCPI[c.name][c.stack], c.normCPI)
			r.Fwd[c.name][c.stack] = append(r.Fwd[c.name][c.stack], c.fwd)
			r.Cont[c.name][c.stack] = append(r.Cont[c.name][c.stack], c.cont)
			if c.haveGV {
				gvAccum[c.name] = append(gvAccum[c.name], c.gv)
			}
		}
	}
	for name, vals := range gvAccum {
		r.GlobalValuesPerInst[name] = stats.Mean(vals)
	}
	return r, nil
}

// PenaltyReduction returns, for a configuration, the average fraction of
// the focused-baseline clustering penalty removed by the final policy
// stack (the paper reports 42/57/66% for 2/4/8 clusters). For 2- and
// 4-cluster machines the final stack is "s" (proactive targets 1-wide
// clusters); for 8 clusters it is "p".
func (r *Figure14Result) PenaltyReduction(config string) float64 {
	final := StackStall
	if config == "8x1w" {
		final = StackProactive
	}
	base := r.NormCPI[config][StackFocused]
	fin := r.NormCPI[config][final]
	var reds []float64
	for i := range base {
		penalty := base[i] - 1
		if penalty <= 0.005 {
			continue // no measurable penalty to reduce
		}
		reds = append(reds, (base[i]-fin[i])/penalty)
	}
	return stats.Mean(reds)
}

// Render writes the Figure 14 table.
func (r *Figure14Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 14: policy stacks (normalized CPI; fwd/cont are critical-path shares)")
	fmt.Fprintf(w, "%-6s %-8s %9s %7s %7s\n", "cfg", "stack", "normCPI", "fwd", "cont")
	for _, cfgName := range []string{"2x4w", "4x2w", "8x1w"} {
		for _, stack := range Stacks() {
			fmt.Fprintf(w, "%-6s %-8s %9.3f %7.3f %7.3f\n", cfgName, stack,
				stats.Mean(r.NormCPI[cfgName][stack]),
				stats.Mean(r.Fwd[cfgName][stack]),
				stats.Mean(r.Cont[cfgName][stack]))
		}
		fmt.Fprintf(w, "%-6s penalty reduction vs focused: %.0f%%; global values/inst: %.3f\n",
			cfgName, r.PenaltyReduction(cfgName)*100, r.GlobalValuesPerInst[cfgName])
	}
}

// RenderPerBench writes the per-benchmark Figure 14 bars (the paper's
// figure is per-benchmark; Render gives the averages).
func (r *Figure14Result) RenderPerBench(w io.Writer) {
	fmt.Fprintln(w, "Figure 14 (per benchmark): normalized CPI per policy stack")
	fmt.Fprintf(w, "%-8s %-6s", "bench", "cfg")
	for _, stack := range Stacks() {
		fmt.Fprintf(w, "%9s", stack)
	}
	fmt.Fprintln(w)
	for i, bench := range r.Benchmarks {
		for _, cfgName := range []string{"2x4w", "4x2w", "8x1w"} {
			fmt.Fprintf(w, "%-8s %-6s", bench, cfgName)
			for _, stack := range Stacks() {
				fmt.Fprintf(w, "%9.3f", r.NormCPI[cfgName][stack][i])
			}
			fmt.Fprintln(w)
		}
	}
}

// Figure15Result reproduces Figure 15: achieved vs available ILP on the
// 8x1w machine with the final policy stack.
type Figure15Result struct {
	// Available[i] is the available-ILP bucket; Achieved[i] the average
	// instructions issued on cycles with that availability.
	Available []int
	Achieved  []float64
	// CycleShare[i] is the fraction of cycles in bucket i.
	CycleShare []float64
}

// Figure15 measures the ILP extraction profile.
func Figure15(opts Options) (*Figure15Result, error) {
	opts = opts.withDefaults()
	results, err := parBench(opts, func(bench string) (machine.Result, error) {
		out, err := sim(opts, bench, 8, StackProactive, false, engine.NeedResult)
		if err != nil {
			return machine.Result{}, err
		}
		return out.Res, nil
	})
	if err != nil {
		return nil, err
	}
	var avail, issued [machine.MaxILPBucket + 1]int64
	for _, res := range results {
		for b := 0; b <= machine.MaxILPBucket; b++ {
			avail[b] += res.ILPAvail[b]
			issued[b] += res.ILPIssued[b]
		}
	}
	r := &Figure15Result{}
	var total int64
	for b := 0; b <= machine.MaxILPBucket; b++ {
		total += avail[b]
	}
	for b := 0; b <= machine.MaxILPBucket; b++ {
		if avail[b] == 0 {
			continue
		}
		r.Available = append(r.Available, b)
		r.Achieved = append(r.Achieved, float64(issued[b])/float64(avail[b]))
		r.CycleShare = append(r.CycleShare, float64(avail[b])/float64(total))
	}
	return r, nil
}

// AchievedAt returns the achieved ILP for an available-ILP bucket (0 if
// the bucket never occurred).
func (r *Figure15Result) AchievedAt(available int) float64 {
	for i, a := range r.Available {
		if a == available {
			return r.Achieved[i]
		}
	}
	return 0
}

// Render writes the ILP table.
func (r *Figure15Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 15: achieved vs available ILP (8x1w, final policies)")
	fmt.Fprintf(w, "%9s %9s %11s\n", "available", "achieved", "cycle-share")
	for i := range r.Available {
		fmt.Fprintf(w, "%9d %9.2f %10.1f%%\n", r.Available[i], r.Achieved[i], r.CycleShare[i]*100)
	}
}

// ConfigTable renders Table 1 (the machine parameters) for the paper's
// four configurations.
func ConfigTable(w io.Writer) {
	fmt.Fprintln(w, "Table 1: machine configurations (8-wide machine partitioned across clusters)")
	fmt.Fprintf(w, "%-6s %7s %5s %4s %4s %7s %5s %6s %6s\n",
		"cfg", "issue/c", "int/c", "fp/c", "mem/c", "window/c", "ROB", "fetch", "fwd")
	for _, k := range []int{1, 2, 4, 8} {
		c := machine.NewConfig(k)
		fmt.Fprintf(w, "%-6s %7d %5d %4d %4d %7d %5d %6d %6d\n",
			c.Name(), c.IssuePerCluster, c.IntPerCluster, c.FPPerCluster, c.MemPerCluster,
			c.WindowPerCluster, c.ROBSize, c.FetchWidth, c.FwdLatency)
	}
	l1 := machine.NewConfig(1).L1
	fmt.Fprintf(w, "L1: %dKB %d-way %d-cycle, %d-byte lines; L2: infinite, %d cycles; gshare %d bits; %d-stage front end\n",
		l1.SizeBytes>>10, l1.Ways, l1.HitCycles, l1.LineBytes, l1.MissCycles,
		machine.NewConfig(1).GshareBits, machine.NewConfig(1).PipelineDepth)
}
