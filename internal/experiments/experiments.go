// Package experiments contains one driver per table and figure of the
// paper's evaluation, built on the simulator, the critical-path analyzer
// and the idealized list scheduler. Every driver returns a structured
// result (for tests and benchmarks) that knows how to render itself as a
// terminal table mirroring the figure.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Figure2   — idealized list scheduling vs monolithic
//	Figure4   — focused steering & scheduling slowdowns
//	Figure5   — critical-path CPI breakdown
//	Figure6   — contention-stall and forwarding-delay event breakdowns
//	Figure8   — distribution of LoC values
//	Figure14  — the three policies (l, s, p bars) and their breakdown
//	Figure15  — achieved vs available ILP on 8x1w
//	LoCOracle — Section 4's list-scheduler priority-knowledge study
//	Consumers — Section 6's producer/consumer criticality statistics
package experiments

import (
	"context"
	"fmt"
	"sync"

	"clustersim/internal/critpath"
	"clustersim/internal/engine"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
	"clustersim/internal/xrand"
)

// Options configures an experiment run.
type Options struct {
	// Benchmarks to run; nil means the paper's full twelve.
	Benchmarks []string
	// Insts is the dynamic instruction count per benchmark (the paper
	// uses 3×100M samples; the default here keeps the full suite
	// tractable on a laptop while preserving every trend).
	Insts int
	// Seed makes runs reproducible.
	Seed uint64
	// Fwd is the inter-cluster forwarding latency (the paper reports 2).
	Fwd int
	// EpochLen overrides the criticality-detector epoch.
	EpochLen int64
	// Engine executes and caches this run's jobs. Drivers sharing an
	// engine share traces and simulations: Figures 4, 5 and 14 all
	// submit the focused stack on the clustered configurations, and the
	// engine simulates each (benchmark, config, stack) exactly once.
	// Nil uses a process-wide default engine.
	Engine *engine.Engine
	// Ctx, when non-nil, is this run's per-submission context: once it
	// is cancelled the drivers' pending engine work fails fast, without
	// affecting other runs sharing the same engine (one tenant's job on
	// a server engine cancels alone). Nil means no per-run cancellation;
	// the engine-wide context from engine.SetContext still applies.
	Ctx context.Context
	// ReplayWorkers overrides the engine's intra-job variant fan-out
	// bound for this run (machine.SimulateVariantsOpts workers); <=0
	// uses engine.ReplayWorkers(). Results are byte-identical under any
	// value — this is purely a throughput/scheduling knob, which is why
	// it never enters cache keys.
	ReplayWorkers int
}

// defaultEngine serves Options with no explicit engine, so library
// callers and tests share work without any wiring.
var (
	defaultEngineOnce sync.Once
	defaultEngine     *engine.Engine
)

// engine returns the options' engine, falling back to the default.
func (o Options) engine() *engine.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	defaultEngineOnce.Do(func() { defaultEngine = engine.New(engine.Config{}) })
	return defaultEngine
}

func (o Options) withDefaults() Options {
	if o.Benchmarks == nil {
		o.Benchmarks = workload.Names()
	}
	if o.Insts <= 0 {
		o.Insts = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Fwd <= 0 {
		o.Fwd = 2
	}
	return o
}

// Stack names a cumulative policy configuration from Figure 14.
type Stack string

const (
	// StackFocused is the baseline: Fields et al.'s focused steering and
	// scheduling with the binary criticality predictor.
	StackFocused Stack = "focused"
	// StackLoC adds LoC-based scheduling and steering (the "l" bars).
	StackLoC Stack = "l"
	// StackStall adds stall-over-steer (the "s" bars).
	StackStall Stack = "s"
	// StackProactive adds proactive load-balancing (the "p" bars).
	StackProactive Stack = "p"
	// StackDepBased is plain dependence-based steering with the default
	// scheduler and no criticality machinery: the constraint-harvesting
	// run behind the idealized list-scheduling studies (Figure 2 and
	// friends) and the workload characterization baseline.
	StackDepBased Stack = "depbased"
)

// Stacks returns the Figure 14 progression in order.
func Stacks() []Stack { return []Stack{StackFocused, StackLoC, StackStall, StackProactive} }

// runOut bundles one simulation's artifacts.
type runOut struct {
	m     *machine.Machine
	res   machine.Result
	exact *predictor.Exact
}

// seedFor derives a per-(benchmark, use) deterministic seed.
func seedFor(base uint64, bench string, use string) uint64 {
	h := base
	for _, c := range bench + "/" + use {
		h = h*1099511628211 + uint64(c)
	}
	return h
}

// genTrace returns the benchmark trace for opts via the engine's
// content-addressed trace cache; every driver submitting the same
// (bench, insts, seed) shares one generation.
func genTrace(opts Options, bench string) (*trace.Trace, error) {
	eng := opts.engine()
	key := engine.TraceKey{Bench: bench, Insts: opts.Insts, Seed: opts.Seed}
	return eng.TraceCtx(opts.Ctx, key, func() (*trace.Trace, error) {
		return workload.Generate(bench, opts.Insts, opts.Seed)
	})
}

// parBench runs fn once per benchmark on the engine's bounded worker
// pool and returns the results in benchmark order. Every benchmark's
// work is seeded independently, so parallel and serial runs produce
// identical results. The lowest-indexed error wins; a panicking fn is
// recovered and surfaced as an error instead of deadlocking the pool.
func parBench[T any](opts Options, fn func(bench string) (T, error)) ([]T, error) {
	return engine.MapCtx(opts.Ctx, opts.engine(), opts.Benchmarks, func(_ int, bench string) (T, error) {
		return fn(bench)
	})
}

// simKey builds the content-addressed job key for one simulation.
func simKey(opts Options, bench string, clusters int, stack Stack, trackExact bool) engine.SimKey {
	return engine.SimKey{
		Bench:      bench,
		Insts:      opts.Insts,
		Seed:       opts.Seed,
		Fwd:        opts.Fwd,
		EpochLen:   opts.EpochLen,
		Clusters:   clusters,
		Stack:      string(stack),
		TrackExact: trackExact,
	}
}

// sim submits one (benchmark, clusters, stack) simulation job to the
// engine. need declares which artifacts the caller reads — NeedResult
// alone lets disk-cached summaries satisfy the job without simulating.
// Identical jobs submitted by different figures simulate once.
func sim(opts Options, bench string, clusters int, stack Stack, trackExact bool, need engine.Need) (*engine.Artifact, error) {
	return opts.engine().SimCtx(opts.Ctx, simKey(opts, bench, clusters, stack, trackExact), need, func() (*engine.Artifact, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return nil, err
		}
		// Result-only jobs recycle their machine into the pool the moment
		// the run finishes; only callers that will actually read events
		// keep the machine alive in the artifact.
		return simulate(opts, bench, tr, clusters, stack, trackExact, need&engine.NeedMachine != 0)
	})
}

// analysis submits one (benchmark, clusters, stack) run to the engine and
// returns its cached critical-path analysis (breakdown, interaction
// lattice, slack). Figure 5, Figure 6, the icost table and the slack
// study all resolve to the same analysis keys, so the walk, the fused
// 16-scenario replay and the slack relaxation each happen once per run —
// in any process with a warm disk cache, zero times.
func analysis(opts Options, bench string, clusters int, stack Stack) (engine.CritSummary, error) {
	return opts.engine().AnalysisCtx(opts.Ctx, simKey(opts, bench, clusters, stack, false), func() (*engine.Artifact, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return nil, err
		}
		return simulate(opts, bench, tr, clusters, stack, false, true)
	})
}

// runStack is the compatibility wrapper for drivers that still want the
// raw (machine, result, exact) triple: it routes through the engine so
// the run is cached and deduplicated, requesting the live machine (and
// the exact tracker when trackExact).
func runStack(opts Options, bench string, _ *trace.Trace, clusters int, stack Stack, trackExact bool) (runOut, error) {
	need := engine.NeedResult | engine.NeedMachine
	if trackExact {
		need |= engine.NeedExact
	}
	a, err := sim(opts, bench, clusters, stack, trackExact, need)
	if err != nil {
		return runOut{}, err
	}
	return runOut{m: a.Machine(), res: a.Res, exact: a.Exact()}, nil
}

// stackSetup is the fully-built machine recipe for one (benchmark,
// clusters, stack) job: everything in it is determined by (opts, bench,
// clusters, stack, trackExact) — the purity contract the engine's
// caching relies on.
type stackSetup struct {
	cfg   machine.Config
	pol   machine.SteerPolicy
	hooks machine.Hooks
	det   *critpath.Detector // nil for StackDepBased
	exact *predictor.Exact   // nil unless trackExact (and never for depbased)
}

// buildStack constructs the machine configuration, policy, hooks and
// (for criticality stacks) the online detector for one job, without
// running anything. simulate and simVariants share it so the solo and
// fused submission paths build byte-identical machines.
func buildStack(opts Options, bench string, clusters int, stack Stack, trackExact bool) (stackSetup, error) {
	cfg := machine.NewConfig(clusters)
	cfg.FwdLatency = opts.Fwd

	if stack == StackDepBased {
		return stackSetup{cfg: cfg, pol: steer.DepBased{},
			hooks: machine.Hooks{EpochLen: opts.EpochLen}}, nil
	}

	var pol machine.SteerPolicy
	hooks := machine.Hooks{EpochLen: opts.EpochLen}
	switch stack {
	case StackFocused:
		cfg.SchedMode = machine.SchedBinaryCritical
		pol = steer.Focused{}
		hooks.Binary = predictor.NewDefaultBinary()
	case StackLoC:
		cfg.SchedMode = machine.SchedLoC
		pol = steer.LoC{}
	case StackStall:
		cfg.SchedMode = machine.SchedLoC
		pol = &steer.StallOverSteer{}
	case StackProactive:
		cfg.SchedMode = machine.SchedLoC
		pol = steer.NewProactive()
	default:
		return stackSetup{}, fmt.Errorf("experiments: unknown stack %q", stack)
	}
	if stack != StackFocused {
		hooks.LoC = predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "loc")))
		// The binary predictor stays attached so Figure 6's
		// predicted-critical attribution is meaningful on every stack.
		hooks.Binary = predictor.NewDefaultBinary()
	}

	det := critpath.NewDetector(hooks.Binary, hooks.LoC)
	var exact *predictor.Exact
	if trackExact {
		exact = predictor.NewExact()
		det.TrackExact(exact)
	}
	hooks.OnEpoch = det.OnEpoch
	return stackSetup{cfg: cfg, pol: pol, hooks: hooks, det: det, exact: exact}, nil
}

// artifactFor wraps one finished run, recycling the machine into the
// pool when the caller never reads per-instruction events.
func artifactFor(m *machine.Machine, res machine.Result, exact *predictor.Exact, keepMachine bool) *engine.Artifact {
	if !keepMachine {
		machine.Recycle(m)
		return engine.NewResultArtifact(res, exact)
	}
	return engine.NewArtifact(m, res, exact)
}

// simulate builds and runs one machine under the given policy stack,
// with the online criticality detector training the appropriate
// predictors. trackExact additionally records unlimited-precision
// criticality frequencies. This is the engine job body; everything it
// does is determined by (opts, bench, clusters, stack, trackExact).
// keepMachine controls the machine's lifetime: callers that never read
// per-instruction events let the run return a result-only artifact and
// recycle the machine (with its megabytes of event log) into the pool.
func simulate(opts Options, bench string, tr *trace.Trace, clusters int, stack Stack, trackExact, keepMachine bool) (*engine.Artifact, error) {
	su, err := buildStack(opts, bench, clusters, stack, trackExact)
	if err != nil {
		return nil, err
	}
	m, err := machine.NewPooled(su.cfg, tr, su.pol, su.hooks)
	if err != nil {
		return nil, err
	}
	if su.det != nil {
		su.det.Bind(m)
	}
	res := m.Run()
	return artifactFor(m, res, su.exact, keepMachine), nil
}

// simVariants submits every cluster geometry of one (benchmark, stack)
// sweep as a single batch: cached geometries are served individually
// under their usual SimKeys, and whatever remains is computed by one
// fused machine.SimulateVariants call that decodes the trace, builds the
// producer index and trains the shared front-end once for the whole
// sweep. The returned artifacts align with clustersList.
func simVariants(opts Options, bench string, clustersList []int, stack Stack, trackExact bool, need engine.Need) ([]*engine.Artifact, error) {
	keys := make([]engine.SimKey, len(clustersList))
	for i, k := range clustersList {
		keys[i] = simKey(opts, bench, k, stack, trackExact)
	}
	return opts.engine().SimVariantsCtx(opts.Ctx, keys, need, func(miss []int) ([]*engine.Artifact, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return nil, err
		}
		variants := make([]machine.Variant, len(miss))
		setups := make([]stackSetup, len(miss))
		for j, i := range miss {
			su, err := buildStack(opts, bench, clustersList[i], stack, trackExact)
			if err != nil {
				return nil, err
			}
			setups[j] = su
			v := machine.Variant{Config: su.cfg, Pol: su.pol, Hooks: su.hooks}
			if su.det != nil {
				det := su.det
				v.Setup = func(m *machine.Machine) { det.Bind(m) }
			}
			variants[j] = v
		}
		// Fan the per-variant replays out over the engine's per-job
		// worker share (results are order-stitched and byte-identical
		// under any fan-out), and skip event-log materialization when
		// the caller keeps only Results — the NewResultArtifact case.
		eng := opts.engine()
		workers := opts.ReplayWorkers
		if workers <= 0 {
			workers = eng.ReplayWorkers()
		}
		keepMachine := need&engine.NeedMachine != 0
		// ResultOnly is safe even when NeedExact is set: exact tracking
		// rides on a detector (Setup != nil), which makes those variants
		// elide-ineligible per-variant inside the machine layer.
		outs, stats, err := machine.SimulateVariantsOpts(tr, variants, machine.VariantsOptions{
			Workers:    workers,
			ResultOnly: !keepMachine,
		})
		if err != nil {
			return nil, err
		}
		eng.NoteReplay(stats)
		arts := make([]*engine.Artifact, len(miss))
		for j := range outs {
			arts[j] = artifactFor(outs[j].M, outs[j].Res, setups[j].exact, keepMachine)
		}
		return arts, nil
	})
}
