// Package experiments contains one driver per table and figure of the
// paper's evaluation, built on the simulator, the critical-path analyzer
// and the idealized list scheduler. Every driver returns a structured
// result (for tests and benchmarks) that knows how to render itself as a
// terminal table mirroring the figure.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Figure2   — idealized list scheduling vs monolithic
//	Figure4   — focused steering & scheduling slowdowns
//	Figure5   — critical-path CPI breakdown
//	Figure6   — contention-stall and forwarding-delay event breakdowns
//	Figure8   — distribution of LoC values
//	Figure14  — the three policies (l, s, p bars) and their breakdown
//	Figure15  — achieved vs available ILP on 8x1w
//	LoCOracle — Section 4's list-scheduler priority-knowledge study
//	Consumers — Section 6's producer/consumer criticality statistics
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"clustersim/internal/critpath"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
	"clustersim/internal/xrand"
)

// Options configures an experiment run.
type Options struct {
	// Benchmarks to run; nil means the paper's full twelve.
	Benchmarks []string
	// Insts is the dynamic instruction count per benchmark (the paper
	// uses 3×100M samples; the default here keeps the full suite
	// tractable on a laptop while preserving every trend).
	Insts int
	// Seed makes runs reproducible.
	Seed uint64
	// Fwd is the inter-cluster forwarding latency (the paper reports 2).
	Fwd int
	// EpochLen overrides the criticality-detector epoch.
	EpochLen int64
}

func (o Options) withDefaults() Options {
	if o.Benchmarks == nil {
		o.Benchmarks = workload.Names()
	}
	if o.Insts <= 0 {
		o.Insts = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Fwd <= 0 {
		o.Fwd = 2
	}
	return o
}

// Stack names a cumulative policy configuration from Figure 14.
type Stack string

const (
	// StackFocused is the baseline: Fields et al.'s focused steering and
	// scheduling with the binary criticality predictor.
	StackFocused Stack = "focused"
	// StackLoC adds LoC-based scheduling and steering (the "l" bars).
	StackLoC Stack = "l"
	// StackStall adds stall-over-steer (the "s" bars).
	StackStall Stack = "s"
	// StackProactive adds proactive load-balancing (the "p" bars).
	StackProactive Stack = "p"
)

// Stacks returns the Figure 14 progression in order.
func Stacks() []Stack { return []Stack{StackFocused, StackLoC, StackStall, StackProactive} }

// runOut bundles one simulation's artifacts.
type runOut struct {
	m     *machine.Machine
	res   machine.Result
	exact *predictor.Exact
}

// seedFor derives a per-(benchmark, use) deterministic seed.
func seedFor(base uint64, bench string, use string) uint64 {
	h := base
	for _, c := range bench + "/" + use {
		h = h*1099511628211 + uint64(c)
	}
	return h
}

// genTrace generates the benchmark trace for opts.
func genTrace(opts Options, bench string) (*trace.Trace, error) {
	return workload.Generate(bench, opts.Insts, opts.Seed)
}

// parBench runs fn once per benchmark, concurrently (bounded by CPU
// count), and returns the results in benchmark order. Every benchmark's
// work is seeded independently, so parallel and serial runs produce
// identical results. The first error wins.
func parBench[T any](opts Options, fn func(bench string) (T, error)) ([]T, error) {
	benches := opts.Benchmarks
	out := make([]T, len(benches))
	errs := make([]error, len(benches))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(benches) {
		workers = len(benches)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(benches[i])
			}
		}()
	}
	for i := range benches {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runStack simulates tr on a clusters-way machine under the given policy
// stack, with the online criticality detector training the appropriate
// predictors. trackExact additionally records unlimited-precision
// criticality frequencies.
func runStack(opts Options, bench string, tr *trace.Trace, clusters int, stack Stack, trackExact bool) (runOut, error) {
	cfg := machine.NewConfig(clusters)
	cfg.FwdLatency = opts.Fwd

	var pol machine.SteerPolicy
	hooks := machine.Hooks{EpochLen: opts.EpochLen}
	switch stack {
	case StackFocused:
		cfg.SchedMode = machine.SchedBinaryCritical
		pol = steer.Focused{}
		hooks.Binary = predictor.NewDefaultBinary()
	case StackLoC:
		cfg.SchedMode = machine.SchedLoC
		pol = steer.LoC{}
	case StackStall:
		cfg.SchedMode = machine.SchedLoC
		pol = &steer.StallOverSteer{}
	case StackProactive:
		cfg.SchedMode = machine.SchedLoC
		pol = steer.NewProactive()
	default:
		return runOut{}, fmt.Errorf("experiments: unknown stack %q", stack)
	}
	if stack != StackFocused {
		hooks.LoC = predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "loc")))
		// The binary predictor stays attached so Figure 6's
		// predicted-critical attribution is meaningful on every stack.
		hooks.Binary = predictor.NewDefaultBinary()
	}

	det := critpath.NewDetector(hooks.Binary, hooks.LoC)
	var exact *predictor.Exact
	if trackExact {
		exact = predictor.NewExact()
		det.TrackExact(exact)
	}
	hooks.OnEpoch = det.OnEpoch

	m, err := machine.New(cfg, tr, pol, hooks)
	if err != nil {
		return runOut{}, err
	}
	det.Bind(m)
	res := m.Run()
	return runOut{m: m, res: res, exact: exact}, nil
}
