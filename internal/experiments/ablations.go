package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/xrand"
)

// FwdSweepResult reproduces the paper's Section 2.1 sensitivity note
// (footnote 3): the idealized study re-run across inter-cluster
// forwarding latencies of 1–4 cycles.
type FwdSweepResult struct {
	// Avg[lat][i] is the average normalized idealized CPI at latency
	// lat for clusterCounts[i].
	Avg  map[int][]float64
	Lats []int
}

// FwdSweep runs the idealized study at several forwarding latencies.
func FwdSweep(opts Options) (*FwdSweepResult, error) {
	opts = opts.withDefaults()
	r := &FwdSweepResult{Avg: map[int][]float64{}, Lats: []int{1, 2, 4}}
	// rows[bench][latIdx][clusterIdx]
	rows, err := parBench(opts, func(bench string) ([][]float64, error) {
		out := make([][]float64, len(r.Lats))
		for li, lat := range r.Lats {
			out[li] = make([]float64, len(clusterCounts))
			// Vary the forwarding latency through the job key, so the
			// lat == opts.Fwd row shares the cached Figure 2 run and its
			// cached schedules.
			latOpts := opts
			latOpts.Fwd = lat
			ss, err := idealSchedules(latOpts, bench, StackDepBased, false, oracleSweepSpecs(lat))
			if err != nil {
				return nil, err
			}
			for i := range clusterCounts {
				out[li][i] = float64(ss[i+1].Makespan) / float64(ss[0].Makespan)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for li, lat := range r.Lats {
		avg := make([]float64, len(clusterCounts))
		for _, row := range rows {
			for i := range avg {
				avg[i] += row[li][i]
			}
		}
		for i := range avg {
			avg[i] /= float64(len(opts.Benchmarks))
		}
		r.Avg[lat] = avg
	}
	return r, nil
}

// Render writes the latency sweep.
func (r *FwdSweepResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Section 2.1 (footnote 3): idealized study across forwarding latencies")
	fmt.Fprintf(w, "%-4s %8s %8s %8s\n", "fwd", "2x4w", "4x2w", "8x1w")
	for _, lat := range r.Lats {
		a := r.Avg[lat]
		fmt.Fprintf(w, "%-4d %8.3f %8.3f %8.3f\n", lat, a[0], a[1], a[2])
	}
}

// StallSweepResult is the stall-over-steer threshold ablation: the paper
// chose its 30% LoC threshold empirically (Section 5); this sweep shows
// the sensitivity on the 8x1w machine.
type StallSweepResult struct {
	Thresholds []float64
	Table      *stats.Table // rows: benchmarks, cols: thresholds
}

// StallSweep measures 8x1w normalized CPI per stall threshold.
func StallSweep(opts Options) (*StallSweepResult, error) {
	opts = opts.withDefaults()
	thresholds := []float64{0.15, 0.30, 0.50}
	cols := make([]string, len(thresholds))
	for i, t := range thresholds {
		cols[i] = fmt.Sprintf("thr=%.2f", t)
	}
	tbl := &stats.Table{Title: "Stall-over-steer threshold ablation (8x1w normalized CPI)", Columns: cols}
	rows, err := parBench(opts, func(bench string) ([]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return nil, err
		}
		base, err := runStack(opts, bench, tr, 1, StackLoC, false)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, len(thresholds))
		for _, thr := range thresholds {
			cfg := machine.NewConfig(8)
			cfg.FwdLatency = opts.Fwd
			cfg.SchedMode = machine.SchedLoC
			hooks := machine.Hooks{
				Binary: predictor.NewDefaultBinary(),
				LoC:    predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "loc"))),
			}
			det := critpath.NewDetector(hooks.Binary, hooks.LoC)
			hooks.OnEpoch = det.OnEpoch
			m, err := machine.New(cfg, tr, &steer.StallOverSteer{Threshold: thr}, hooks)
			if err != nil {
				return nil, err
			}
			det.Bind(m)
			res := m.Run()
			vals = append(vals, res.CPI()/base.res.CPI())
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		tbl.AddRow(bench, rows[i]...)
	}
	tbl.AddRow("AVE", tbl.ColumnMeans()...)
	return &StallSweepResult{Thresholds: thresholds, Table: tbl}, nil
}

// Render writes the threshold ablation.
func (r *StallSweepResult) Render(w io.Writer) { r.Table.Render(w) }
