package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/steer"
	"clustersim/internal/xrand"
)

// PredictorSweepResult is the predictor-capacity ablation: the paper
// sizes its PC-indexed tables generously (and Section 7 shows 4-bit
// probabilistic counters suffice per entry); this sweep shows how much
// table aliasing a real design could tolerate.
type PredictorSweepResult struct {
	Bits []uint
	Avg  []float64 // 8x1w normalized CPI under stall-over-steer per size
}

// PredictorSweep varies the LoC/binary table size (2^bits entries).
func PredictorSweep(opts Options) (*PredictorSweepResult, error) {
	opts = opts.withDefaults()
	r := &PredictorSweepResult{Bits: []uint{6, 10, 16}}
	rows, err := parBench(opts, func(bench string) ([]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return nil, err
		}
		base, err := runStack(opts, bench, tr, 1, StackLoC, false)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(r.Bits))
		for i, bits := range r.Bits {
			cfg := machine.NewConfig(8)
			cfg.FwdLatency = opts.Fwd
			cfg.SchedMode = machine.SchedLoC
			binary := predictor.NewBinary(bits)
			loc := predictor.NewLoC(bits, xrand.New(seedFor(opts.Seed, bench, "ps-loc")))
			det := critpath.NewDetector(binary, loc)
			m, err := machine.New(cfg, tr, &steer.StallOverSteer{}, machine.Hooks{
				Binary: binary, LoC: loc, OnEpoch: det.OnEpoch,
			})
			if err != nil {
				return nil, err
			}
			det.Bind(m)
			res := m.Run()
			vals[i] = res.CPI() / base.res.CPI()
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	r.Avg = averageRows(rows, len(r.Bits), len(opts.Benchmarks))
	return r, nil
}

// Render writes the predictor-capacity ablation.
func (r *PredictorSweepResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Predictor table-size ablation (8x1w, stall-over-steer; avg normalized CPI)")
	for i, bits := range r.Bits {
		fmt.Fprintf(w, "%6d entries %8.3f\n", 1<<bits, r.Avg[i])
	}
}
