package experiments

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"clustersim/internal/engine"
)

// renderer is the surface every driver result shares; the determinism
// suite compares rendered bytes, so any nondeterminism in values,
// ordering or aggregation shows up.
type renderer interface{ Render(w io.Writer) }

// determinismDrivers lists every figure driver the suite pins. Each
// entry must be a pure function of Options.
var determinismDrivers = []struct {
	name string
	run  func(Options) (renderer, error)
}{
	{"figure2", func(o Options) (renderer, error) { return Figure2(o) }},
	{"figure4", func(o Options) (renderer, error) { return Figure4(o) }},
	{"figure5", func(o Options) (renderer, error) { return Figure5(o) }},
	{"figure8", func(o Options) (renderer, error) { return Figure8(o) }},
	{"figure14", func(o Options) (renderer, error) { return Figure14(o) }},
	{"figure15", func(o Options) (renderer, error) { return Figure15(o) }},
	{"loc-oracle", func(o Options) (renderer, error) { return LoCOracle(o) }},
	{"consumers", func(o Options) (renderer, error) { return Consumers(o) }},
}

// determinismOpts keeps the suite fast while exercising multi-benchmark
// parallelism in every driver.
func determinismOpts(eng *engine.Engine) Options {
	return Options{
		Insts:      8_000,
		Benchmarks: []string{"gzip", "vpr", "mcf"},
		Engine:     eng,
	}
}

// renderDriver runs one driver on a fresh engine with the given worker
// count and returns the rendered output.
func renderDriver(t *testing.T, name string, run func(Options) (renderer, error), workers int) string {
	t.Helper()
	eng := engine.New(engine.Config{Workers: workers})
	r, err := run(determinismOpts(eng))
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", name, workers, err)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Fatalf("%s rendered nothing", name)
	}
	return buf.String()
}

// TestDeterminismAcrossWorkers pins the engine's core promise: every
// figure driver renders byte-identical output serially (-j 1) and fully
// parallel (-j NumCPU). Each invocation uses a fresh engine so nothing
// is served from cache — the parallel run really re-executes the jobs.
func TestDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism suite runs every driver several times")
	}
	for _, d := range determinismDrivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			serial := renderDriver(t, d.name, d.run, 1)
			parallel := renderDriver(t, d.name, d.run, runtime.NumCPU())
			if serial != parallel {
				t.Errorf("serial and parallel runs differ:\n--- workers=1\n%s\n--- workers=%d\n%s",
					serial, runtime.NumCPU(), parallel)
			}
		})
	}
}

// TestDeterminismAcrossGOMAXPROCS re-runs a representative driver pair
// under two GOMAXPROCS settings: goroutine scheduling must not leak into
// results.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism suite runs every driver several times")
	}
	drivers := determinismDrivers[:2] // figure2 (list scheduling), figure4 (full stacks)
	outs := make(map[string][]string)
	for _, procs := range []int{1, 2} {
		old := runtime.GOMAXPROCS(procs)
		for _, d := range drivers {
			outs[d.name] = append(outs[d.name], renderDriver(t, d.name, d.run, 4))
		}
		runtime.GOMAXPROCS(old)
	}
	for name, o := range outs {
		if o[0] != o[1] {
			t.Errorf("%s differs between GOMAXPROCS=1 and GOMAXPROCS=2", name)
		}
	}
}

// TestDeterminismAcrossReplayWorkers extends the byte-identity suite to
// the intra-job parallel replay layer: every figure must render
// identically whether variant batches replay serially, on 2 workers, or
// on NumCPU workers. Fresh engines per run, so nothing is served from
// cache — the parallel fan-out really executes.
func TestDeterminismAcrossReplayWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism suite runs every driver several times")
	}
	render := func(name string, run func(Options) (renderer, error), replay int) string {
		t.Helper()
		eng := engine.New(engine.Config{Workers: 2, ReplayWorkers: replay})
		o := determinismOpts(eng)
		o.ReplayWorkers = replay
		r, err := run(o)
		if err != nil {
			t.Fatalf("%s (replay=%d): %v", name, replay, err)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		return buf.String()
	}
	// figure4 and figure14 run the full stack sweeps through
	// simVariants — the batched path the fan-out parallelizes.
	for _, d := range determinismDrivers {
		if d.name != "figure4" && d.name != "figure14" {
			continue
		}
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			serial := render(d.name, d.run, 1)
			for _, replay := range []int{2, runtime.NumCPU() + 1} {
				if got := render(d.name, d.run, replay); got != serial {
					t.Errorf("replay workers %d render differs from serial:\n--- serial\n%s\n--- replay=%d\n%s",
						replay, serial, replay, got)
				}
			}
		})
	}
}

// TestSharedEngineCacheHits is the cross-figure dedup acceptance check:
// running the drivers on ONE engine must serve some simulations from
// cache (Figures 4, 5 and 14 share focused-stack runs; Figure 8 and
// Consumers share exact-tracked runs) while rendering exactly what
// fresh engines render.
func TestSharedEngineCacheHits(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism suite runs every driver several times")
	}
	shared := engine.New(engine.Config{Workers: runtime.NumCPU()})
	for _, d := range determinismDrivers {
		r, err := d.run(determinismOpts(shared))
		if err != nil {
			t.Fatalf("%s on shared engine: %v", d.name, err)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		fresh := renderDriver(t, d.name, d.run, runtime.NumCPU())
		if buf.String() != fresh {
			t.Errorf("%s: shared-engine output differs from fresh-engine output:\n--- shared\n%s\n--- fresh\n%s",
				d.name, buf.String(), fresh)
		}
	}
	s := shared.Summary()
	if s.SimHits == 0 {
		t.Errorf("shared engine reports no cache hits across the figure drivers (misses=%d)", s.SimMisses)
	}
	t.Logf("shared engine: %d sim hits, %d misses, hit rate %.2f", s.SimHits, s.SimMisses, s.HitRate())
}

// TestParBenchPanicSurfaces is the regression test for the old parBench
// implementation, whose unbuffered dispatch channel deadlocked every
// sibling worker when a job panicked. A panic must come back as an
// error, and the other benchmarks must still complete.
func TestParBenchPanicSurfaces(t *testing.T) {
	opts := Options{
		Insts:      1_000,
		Benchmarks: []string{"gzip", "vpr", "mcf", "gcc"},
		Engine:     engine.New(engine.Config{Workers: 2}),
	}
	var done atomic.Int64
	_, err := parBench(opts, func(bench string) (int, error) {
		if bench == "vpr" {
			panic("driver bug")
		}
		done.Add(1)
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "driver bug") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if done.Load() != 3 {
		t.Errorf("%d sibling benchmarks completed, want 3", done.Load())
	}
}
