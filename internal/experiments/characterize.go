package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/engine"
	"clustersim/internal/isa"
)

// CharacterizeResult describes each synthetic benchmark the way a
// methodology section would: op mix, branch predictability, memory
// behavior, and baseline monolithic performance. It substantiates the
// DESIGN.md substitution argument with measured numbers.
type CharacterizeResult struct {
	Rows []CharacterRow
}

// CharacterRow is one benchmark's profile.
type CharacterRow struct {
	Bench       string
	CPI         float64 // 1x8w dependence-based baseline
	IPC         float64
	BranchFrac  float64 // branches per instruction
	MispredRate float64 // gshare misses per branch
	LoadFrac    float64
	StoreFrac   float64
	FPFrac      float64
	L1MissRate  float64
	StaticPCs   int
}

// Characterize measures every benchmark on the monolithic machine.
func Characterize(opts Options) (*CharacterizeResult, error) {
	opts = opts.withDefaults()
	rows, err := parBench(opts, func(bench string) (CharacterRow, error) {
		var row CharacterRow
		row.Bench = bench
		tr, err := genTrace(opts, bench)
		if err != nil {
			return row, err
		}
		a, err := sim(opts, bench, 1, StackDepBased, false, engine.NeedResult)
		if err != nil {
			return row, err
		}
		res := a.Res
		s := tr.Summarize()
		n := float64(s.Total)
		row.CPI = res.CPI()
		row.IPC = res.IPC()
		row.BranchFrac = float64(s.Branches) / n
		row.MispredRate = res.MispredictRate()
		row.LoadFrac = s.Frac(isa.Load)
		row.StoreFrac = s.Frac(isa.Store)
		row.FPFrac = s.Frac(isa.FPAdd) + s.Frac(isa.FPMult) + s.Frac(isa.FPDiv)
		row.L1MissRate = res.L1MissRate
		pcs := map[uint64]bool{}
		for i := range tr.Insts {
			pcs[tr.Insts[i].PC] = true
		}
		row.StaticPCs = len(pcs)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &CharacterizeResult{Rows: rows}, nil
}

// Render writes the characterization table.
func (r *CharacterizeResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Workload characterization (1x8w, dependence-based steering)")
	fmt.Fprintf(w, "%-8s %6s %6s %7s %8s %6s %6s %5s %7s %7s\n",
		"bench", "CPI", "IPC", "branch", "mispred", "load", "store", "fp", "L1miss", "PCs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %6.3f %6.2f %6.1f%% %7.1f%% %5.1f%% %5.1f%% %4.1f%% %6.1f%% %7d\n",
			row.Bench, row.CPI, row.IPC, row.BranchFrac*100, row.MispredRate*100,
			row.LoadFrac*100, row.StoreFrac*100, row.FPFrac*100, row.L1MissRate*100,
			row.StaticPCs)
	}
}
