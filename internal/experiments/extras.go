package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/engine"
	"clustersim/internal/stats"
)

// LoCOracleResult reproduces Section 4's in-text study: the idealized
// list scheduler re-run with progressively weaker criticality knowledge.
// The paper reports average losses of ~1%/2% (oracle), 0.5/1.5/2.7% (LoC)
// and 1.5/5/9.8% (binary) for the 2-/4-/8-cluster machines.
type LoCOracleResult struct {
	// Loss[priority][i] is the average normalized-CPI excess (vs the
	// idealized monolithic schedule) for clusterCounts[i].
	Loss map[string][]float64
}

// Priority names used by LoCOracle.
const (
	PriOracle       = "oracle"
	PriLoC16        = "loc16"
	PriLoCUnlimited = "loc-unlimited"
	PriBinary       = "binary"
)

// LoCOracle runs the list scheduler with each priority source.
func LoCOracle(opts Options) (*LoCOracleResult, error) {
	opts = opts.withDefaults()
	names := []string{PriOracle, PriLoC16, PriLoCUnlimited, PriBinary}
	losses, err := parBench(opts, func(bench string) (map[string][]float64, error) {
		// The LoC/binary priorities use past criticality observed on the
		// monolithic machine, via the detector's exact tracker; all 13
		// variants (mono baseline + 3 cluster counts × 4 priorities) go
		// through the schedule cache as one fused batch.
		specs := []schedSpec{{1, opts.Fwd, PriOracle}}
		for _, k := range clusterCounts {
			for _, name := range names {
				specs = append(specs, schedSpec{k, opts.Fwd, name})
			}
		}
		ss, err := idealSchedules(opts, bench, StackFocused, true, specs)
		if err != nil {
			return nil, err
		}
		mono := float64(ss[0].Makespan)
		local := map[string][]float64{}
		for _, name := range names {
			local[name] = make([]float64, len(clusterCounts))
		}
		for i := range clusterCounts {
			for j, name := range names {
				local[name][i] = float64(ss[1+i*len(names)+j].Makespan)/mono - 1
			}
		}
		return local, nil
	})
	if err != nil {
		return nil, err
	}
	sums := map[string][]float64{}
	for _, pri := range []string{PriOracle, PriLoC16, PriLoCUnlimited, PriBinary} {
		sums[pri] = make([]float64, len(clusterCounts))
	}
	for _, local := range losses {
		for name, vals := range local {
			for i, v := range vals {
				sums[name][i] += v
			}
		}
	}
	r := &LoCOracleResult{Loss: map[string][]float64{}}
	for name, s := range sums {
		loss := make([]float64, len(s))
		for i := range s {
			loss[i] = s[i] / float64(len(opts.Benchmarks))
		}
		r.Loss[name] = loss
	}
	return r, nil
}

// Render writes the priority-knowledge comparison.
func (r *LoCOracleResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Section 4: list-scheduler priority knowledge (average loss vs idealized monolithic)")
	fmt.Fprintf(w, "%-14s %8s %8s %8s\n", "priority", "2x4w", "4x2w", "8x1w")
	for _, name := range []string{PriOracle, PriLoCUnlimited, PriLoC16, PriBinary} {
		l := r.Loss[name]
		fmt.Fprintf(w, "%-14s %7.1f%% %7.1f%% %7.1f%%\n", name, l[0]*100, l[1]*100, l[2]*100)
	}
}

// ConsumersResult reproduces Section 6's producer/consumer statistics.
type ConsumersResult struct {
	Table *stats.Table
	// Averages across benchmarks: MCC-not-first fraction, statically
	// unique fraction, bimodal fraction.
	MCCNotFirst      float64
	StaticallyUnique float64
	Bimodal          float64
}

// Consumers runs the dataflow analysis on every benchmark.
func Consumers(opts Options) (*ConsumersResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Section 6: producer/consumer criticality analysis",
		Columns: []string{"mcc-not-first", "static-unique", "bimodal"}}
	rows, err := parBench(opts, func(bench string) ([3]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return [3]float64{}, err
		}
		out, err := sim(opts, bench, 4, StackFocused, true, engine.NeedExact)
		if err != nil {
			return [3]float64{}, err
		}
		s := critpath.AnalyzeConsumers(tr, out.Exact())
		return [3]float64{s.MCCNotFirstFrac(), s.StaticallyUniqueFrac, s.BimodalFrac}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i][0], rows[i][1], rows[i][2])
	}
	means := t.ColumnMeans()
	t.AddRow("AVE", means...)
	return &ConsumersResult{Table: t, MCCNotFirst: means[0],
		StaticallyUnique: means[1], Bimodal: means[2]}, nil
}

// Render writes the consumer statistics.
func (r *ConsumersResult) Render(w io.Writer) { r.Table.Render(w) }

// Figure2Attribution reports the convergent-dataflow share of idealized-
// schedule cross-cluster edges per benchmark (the Section 2.2 analysis).
type Figure2Attribution struct {
	Table *stats.Table
}

// AttributeFigure2 computes per-benchmark dyadic-cross shares on the
// 8x1w idealized schedule.
func AttributeFigure2(opts Options) (*Figure2Attribution, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Section 2.2: convergent dataflow in idealized schedules (8x1w)",
		Columns: []string{"cross/1kinst", "dyadic-share"}}
	rows, err := parBench(opts, func(bench string) ([2]float64, error) {
		// Same schedule key as Figure 2's 8x1w point, so with a shared
		// engine this driver neither simulates nor reschedules anything.
		ss, err := idealSchedules(opts, bench, StackDepBased, false,
			[]schedSpec{{8, opts.Fwd, PriOracle}})
		if err != nil {
			return [2]float64{}, err
		}
		s := ss[0]
		share := 0.0
		if s.CrossEdges > 0 {
			share = float64(s.DyadicCross) / float64(s.CrossEdges)
		}
		return [2]float64{float64(s.CrossEdges) * 1000 / float64(s.Insts), share}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i][0], rows[i][1])
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	return &Figure2Attribution{Table: t}, nil
}

// Render writes the attribution table.
func (r *Figure2Attribution) Render(w io.Writer) { r.Table.Render(w) }
