package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/xrand"
)

// FutureWorkResult tests the paper's closing hypothesis: the final ~5%
// gap comes from steering lacking "a global and accurate view of
// instruction readiness", making least-occupancy load balancing "not
// always appropriate". ReadyBalance gives the proactive policy exactly
// the view the machine can provide — per-cluster counts of currently
// data-ready instructions — and balances on those instead.
type FutureWorkResult struct {
	Table *stats.Table // per benchmark: proactive vs readybalance (8x1w)
	Delta float64      // mean normalized-CPI change (negative = readiness helps)
}

// FutureWork compares proactive and readiness-aware load balancing.
func FutureWork(opts Options) (*FutureWorkResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Future work: readiness-aware load balancing (8x1w)",
		Columns: []string{"proactive", "readybalance"}}
	rows, err := parBench(opts, func(bench string) ([2]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return [2]float64{}, err
		}
		base, err := runStack(opts, bench, tr, 1, StackLoC, false)
		if err != nil {
			return [2]float64{}, err
		}
		var out [2]float64
		for i, pol := range []machine.SteerPolicy{steer.NewProactive(), steer.NewReadyBalance()} {
			cfg := machine.NewConfig(8)
			cfg.FwdLatency = opts.Fwd
			cfg.SchedMode = machine.SchedLoC
			binary := predictor.NewDefaultBinary()
			loc := predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "fw-loc")))
			det := critpath.NewDetector(binary, loc)
			m, err := machine.New(cfg, tr, pol, machine.Hooks{
				Binary: binary, LoC: loc, OnEpoch: det.OnEpoch,
			})
			if err != nil {
				return [2]float64{}, err
			}
			det.Bind(m)
			res := m.Run()
			out[i] = res.CPI() / base.res.CPI()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var deltas []float64
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i][0], rows[i][1])
		deltas = append(deltas, rows[i][1]-rows[i][0])
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	return &FutureWorkResult{Table: t, Delta: stats.Mean(deltas)}, nil
}

// Render writes the comparison.
func (r *FutureWorkResult) Render(w io.Writer) {
	r.Table.Render(w)
	fmt.Fprintf(w, "readiness-aware balancing changes normalized CPI by %+.3f on average —\n", r.Delta)
	fmt.Fprintln(w, "current readiness alone does not close the gap; the paper's text is precise:")
	fmt.Fprintln(w, "the target cluster must not already have *and will not soon have* ready work,")
	fmt.Fprintln(w, "i.e. the missing ingredient is future readiness, which steering cannot see.")
}
