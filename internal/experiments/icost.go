package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/engine"
	"clustersim/internal/stats"
)

// ICostResult is the interaction-cost analysis of the two clustering
// penalties (Section 3's caveat, per Fields et al. MICRO'03): the cost of
// forwarding delay and contention individually and together, on the
// focused 8x1w machine. A combined cost above the sum of individual
// costs means the penalties compose serially; below it, they hide behind
// each other on parallel paths — the reason the paper warns that
// eliminating one attributed penalty "is not guaranteed" to pay in full.
//
// Beyond the paper's fwd/contention pair, the full pairwise lattice over
// {fwd, contention, mem latency, br mispredict} — computed by the same
// fused replay — is aggregated in Pair (benchmark-summed cycles) and
// rendered as a matrix.
type ICostResult struct {
	Table *stats.Table
	// Sums across benchmarks, in cycles.
	TotalFwd, TotalCont, TotalBoth, TotalICost int64
	// Pair sums the pairwise interaction-cost matrix across benchmarks
	// (diagonal = individual costs), in cycles; Insts is the matching
	// instruction total for normalizing.
	Pair  [critpath.NumComponents][critpath.NumComponents]int64
	Insts int64
}

// ICost runs the interaction analysis.
func ICost(opts Options) (*ICostResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Interaction costs on 8x1w focused (CPI units): fwd vs contention",
		Columns: []string{"cost-fwd", "cost-cont", "cost-both", "icost"}}
	r := &ICostResult{}
	type out struct {
		m  critpath.InteractionMatrix
		n  float64
		ni int64
	}
	outs, err := parBench(opts, func(bench string) (out, error) {
		cs, err := analysis(opts, bench, 8, StackFocused)
		if err != nil {
			return out{}, err
		}
		run, err := sim(opts, bench, 8, StackFocused, false, engine.NeedResult)
		if err != nil {
			return out{}, err
		}
		return out{m: cs.Matrix, n: float64(run.Res.Insts), ni: run.Res.Insts}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		m, n := outs[i].m, outs[i].n
		ic := m.Interaction()
		t.AddRow(bench, float64(ic.CostFwd)/n, float64(ic.CostCont)/n,
			float64(ic.CostBoth)/n, float64(ic.ICost)/n)
		r.TotalFwd += ic.CostFwd
		r.TotalCont += ic.CostCont
		r.TotalBoth += ic.CostBoth
		r.TotalICost += ic.ICost
		for a := 0; a < critpath.NumComponents; a++ {
			for b := 0; b < critpath.NumComponents; b++ {
				r.Pair[a][b] += m.Pair[a][b]
			}
		}
		r.Insts += outs[i].ni
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	r.Table = t
	return r, nil
}

// Render writes the interaction table and the full pairwise matrix.
func (r *ICostResult) Render(w io.Writer) {
	r.Table.Render(w)
	switch {
	case r.TotalICost < 0:
		fmt.Fprintln(w, "negative interaction: forwarding delay and contention overlap on parallel")
		fmt.Fprintln(w, "near-critical paths — removing one alone recovers less than its attribution")
	case r.TotalICost > 0:
		fmt.Fprintln(w, "positive interaction: the penalties compose serially")
	default:
		fmt.Fprintln(w, "the penalties are independent")
	}
	fmt.Fprintln(w, "pairwise interaction matrix (CPI units; diagonal = individual costs):")
	fmt.Fprintf(w, "%-8s", "")
	for _, name := range critpath.ComponentNames {
		fmt.Fprintf(w, " %8s", name)
	}
	fmt.Fprintln(w)
	n := float64(r.Insts)
	if n == 0 {
		n = 1
	}
	for a, name := range critpath.ComponentNames {
		fmt.Fprintf(w, "%-8s", name)
		for b := range critpath.ComponentNames {
			fmt.Fprintf(w, " %8.4f", float64(r.Pair[a][b])/n)
		}
		fmt.Fprintln(w)
	}
}
