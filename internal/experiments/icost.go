package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/stats"
)

// ICostResult is the interaction-cost analysis of the two clustering
// penalties (Section 3's caveat, per Fields et al. MICRO'03): the cost of
// forwarding delay and contention individually and together, on the
// focused 8x1w machine. A combined cost above the sum of individual
// costs means the penalties compose serially; below it, they hide behind
// each other on parallel paths — the reason the paper warns that
// eliminating one attributed penalty "is not guaranteed" to pay in full.
type ICostResult struct {
	Table *stats.Table
	// Sums across benchmarks, in cycles.
	TotalFwd, TotalCont, TotalBoth, TotalICost int64
}

// ICost runs the interaction analysis.
func ICost(opts Options) (*ICostResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Interaction costs on 8x1w focused (CPI units): fwd vs contention",
		Columns: []string{"cost-fwd", "cost-cont", "cost-both", "icost"}}
	r := &ICostResult{}
	type out struct {
		ic critpath.InteractionCosts
		n  float64
	}
	outs, err := parBench(opts, func(bench string) (out, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return out{}, err
		}
		run, err := runStack(opts, bench, tr, 8, StackFocused, false)
		if err != nil {
			return out{}, err
		}
		ic, err := critpath.AnalyzeInteraction(run.m)
		if err != nil {
			return out{}, err
		}
		return out{ic: ic, n: float64(run.res.Insts)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		ic, n := outs[i].ic, outs[i].n
		t.AddRow(bench, float64(ic.CostFwd)/n, float64(ic.CostCont)/n,
			float64(ic.CostBoth)/n, float64(ic.ICost)/n)
		r.TotalFwd += ic.CostFwd
		r.TotalCont += ic.CostCont
		r.TotalBoth += ic.CostBoth
		r.TotalICost += ic.ICost
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	r.Table = t
	return r, nil
}

// Render writes the interaction table.
func (r *ICostResult) Render(w io.Writer) {
	r.Table.Render(w)
	switch {
	case r.TotalICost < 0:
		fmt.Fprintln(w, "negative interaction: forwarding delay and contention overlap on parallel")
		fmt.Fprintln(w, "near-critical paths — removing one alone recovers less than its attribution")
	case r.TotalICost > 0:
		fmt.Fprintln(w, "positive interaction: the penalties compose serially")
	default:
		fmt.Fprintln(w, "the penalties are independent")
	}
}
