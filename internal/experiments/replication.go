package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/engine"
	"clustersim/internal/listsched"
	"clustersim/internal/stats"
)

// ReplicationResult tests footnote 4 of the paper: "Instruction
// replication, which has been advocated for statically-scheduled
// clustered machines, therefore does not appear to be necessary for
// dynamic machines." We extend the idealized list scheduler with
// replication and measure what it actually buys per configuration.
type ReplicationResult struct {
	Table *stats.Table // per benchmark: 8x1w normalized CPI without/with replication
	// AvgGain[i] is the average normalized-CPI reduction replication
	// achieves on clusterCounts[i].
	AvgGain []float64
	// ReplicasPerKiloInst is the replica density on the 8x1w schedules.
	ReplicasPerKiloInst float64
}

// Replication runs the idealized study with and without replication.
func Replication(opts Options) (*ReplicationResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Footnote 4: instruction replication in idealized schedules (8x1w normalized CPI)",
		Columns: []string{"plain", "replicated"}}
	gains := make([]float64, len(clusterCounts))
	var replicas, insts float64
	type out struct {
		row      [2]float64
		gains    []float64
		replicas float64
		insts    float64
	}
	outs, err := parBench(opts, func(bench string) (out, error) {
		var o out
		o.gains = make([]float64, len(clusterCounts))
		// The monolithic baseline and plain clustered schedules resolve
		// to the same schedule-cache keys Figure 2 produces, so a shared
		// engine replays none of them here. Replicated schedules stay on
		// the direct path: they need per-instruction placements (replica
		// sets), which the cache deliberately does not retain.
		a, err := sim(opts, bench, 1, StackDepBased, false, engine.NeedMachine)
		if err != nil {
			return o, err
		}
		in := listsched.FromMachineRun(a.Machine())
		pri := listsched.NewOracle(in)
		ss, err := idealSchedules(opts, bench, StackDepBased, false, oracleSweepSpecs(opts.Fwd))
		if err != nil {
			return o, err
		}
		mono := ss[0]
		for i, k := range clusterCounts {
			sp := schedSpec{k, opts.Fwd, PriOracle}
			repl, err := listsched.RunReplicated(in, sp.config(), pri)
			if err != nil {
				return o, err
			}
			p := float64(ss[i+1].Makespan) / float64(mono.Makespan)
			r := float64(repl.Makespan) / float64(mono.Makespan)
			o.gains[i] = p - r
			if k == 8 {
				o.row = [2]float64{p, r}
				o.replicas = float64(len(repl.Replicas))
				o.insts = float64(ss[i+1].Insts)
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		o := outs[i]
		t.AddRow(bench, o.row[0], o.row[1])
		for j, g := range o.gains {
			gains[j] += g
		}
		replicas += o.replicas
		insts += o.insts
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	r := &ReplicationResult{Table: t, AvgGain: make([]float64, len(gains))}
	for i := range gains {
		r.AvgGain[i] = gains[i] / float64(len(opts.Benchmarks))
	}
	if insts > 0 {
		r.ReplicasPerKiloInst = replicas / insts * 1000
	}
	return r, nil
}

// Render writes the replication study.
func (r *ReplicationResult) Render(w io.Writer) {
	r.Table.Render(w)
	fmt.Fprintf(w, "average normalized-CPI gain from replication: 2x4w %.4f, 4x2w %.4f, 8x1w %.4f\n",
		r.AvgGain[0], r.AvgGain[1], r.AvgGain[2])
	fmt.Fprintf(w, "replicas per 1000 instructions (8x1w): %.2f\n", r.ReplicasPerKiloInst)
}
