package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSlackStudy(t *testing.T) {
	r, err := SlackStudy(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's premise: most dataflow tolerates forwarding, yet a
	// meaningful fraction is slackless, and per-PC variability is high.
	if r.MeanZeroFrac <= 0 || r.MeanZeroFrac >= 1 {
		t.Errorf("zero-slack fraction %v", r.MeanZeroFrac)
	}
	if r.MeanGEFwdFrac < 0.2 {
		t.Errorf("tolerant fraction %v implausibly low", r.MeanGEFwdFrac)
	}
	if r.MeanStaticSD < 1 {
		t.Errorf("per-PC slack SD %v implausibly static", r.MeanStaticSD)
	}
	if r.MeanBranchBi < 0.6 {
		t.Errorf("mispredicted branches rarely slackless: %v", r.MeanBranchBi)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "AVE") {
		t.Error("render missing AVE")
	}
}

func TestDetectorCompare(t *testing.T) {
	r, err := DetectorCompare(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	// The token detector is an approximation: it may cost something, but
	// it must stay in the same league as the graph detector.
	if r.TokenPenaltyDelta > 0.15 || r.TokenPenaltyDelta < -0.15 {
		t.Errorf("token detector delta %v out of plausible band", r.TokenPenaltyDelta)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "token") {
		t.Error("render missing token column")
	}
}

func TestWindowSweep(t *testing.T) {
	r, err := WindowSweep(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Avg) != len(r.Windows) {
		t.Fatal("mis-sized result")
	}
	// Larger windows must not make the clustered machine slower: window
	// pressure is a real component of the penalty.
	if r.Avg[0] < r.Avg[len(r.Avg)-1]-0.005 {
		t.Errorf("larger windows slowed the machine: %v", r.Avg)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestBandwidthSweep(t *testing.T) {
	r, err := BandwidthSweep(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	// Unlimited and 2/cycle should be nearly indistinguishable (the
	// paper's assumption); 1/cycle may cost a little.
	if diff := r.Avg[1] - r.Avg[0]; diff > 0.01 {
		t.Errorf("2 broadcasts/cycle costs %v vs unlimited — too much", diff)
	}
	if r.Avg[2] < r.Avg[0]-0.005 {
		t.Errorf("limiting bandwidth sped the machine up: %v", r.Avg)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "unlimited") {
		t.Error("render missing unlimited row")
	}
}

func TestFwdSweep(t *testing.T) {
	r, err := FwdSweep(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	// Idealized penalties grow (weakly) with latency, staying small.
	for _, lat := range r.Lats {
		a := r.Avg[lat]
		if a[0] > 1.05 || a[2] > 1.2 {
			t.Errorf("fwd=%d idealized averages implausible: %v", lat, a)
		}
	}
	if r.Avg[4][2] < r.Avg[1][2]-0.01 {
		t.Errorf("higher latency reduced the idealized penalty: %v vs %v", r.Avg[4], r.Avg[1])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestReplicationStudy(t *testing.T) {
	r, err := Replication(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	// Footnote 4: replication must not matter much either way.
	for i, g := range r.AvgGain {
		if g > 0.05 || g < -0.05 {
			t.Errorf("replication gain[%d] = %v — implausibly large", i, g)
		}
	}
	if r.ReplicasPerKiloInst < 0 {
		t.Errorf("negative replica density")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "replicas per 1000") {
		t.Error("render missing replica density")
	}
}

func TestFutureWorkStudy(t *testing.T) {
	r, err := FutureWork(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	// Either direction is a valid finding, but the policies must stay in
	// the same league.
	if r.Delta > 0.1 || r.Delta < -0.1 {
		t.Errorf("readybalance delta %v implausible", r.Delta)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "readiness") {
		t.Error("render missing summary")
	}
}

func TestCharacterize(t *testing.T) {
	r, err := Characterize(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CPI <= 0 || row.BranchFrac <= 0 || row.StaticPCs <= 0 {
			t.Errorf("%s: implausible characterization %+v", row.Bench, row)
		}
		if row.MispredRate < 0 || row.MispredRate > 0.5 {
			t.Errorf("%s: mispredict rate %v", row.Bench, row.MispredRate)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "CPI") {
		t.Error("render missing header")
	}
}

func TestPredictorSweep(t *testing.T) {
	r, err := PredictorSweep(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Avg) != len(r.Bits) {
		t.Fatal("mis-sized result")
	}
	// A bigger table must not be clearly worse than a tiny one.
	if r.Avg[len(r.Avg)-1] > r.Avg[0]+0.02 {
		t.Errorf("larger predictor tables hurt: %v", r.Avg)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "entries") {
		t.Error("render missing rows")
	}
}

func TestGroupSteerStudy(t *testing.T) {
	r, err := GroupSteer(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	// Losing intra-cycle placement knowledge must not help, and usually
	// hurts.
	if r.Delta < -0.01 {
		t.Errorf("group steering outperformed serial steering by %v", -r.Delta)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "group steering costs") {
		t.Error("render missing summary")
	}
}

func TestICostStudy(t *testing.T) {
	r, err := ICost(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalFwd < 0 || r.TotalCont < 0 || r.TotalBoth < 0 {
		t.Errorf("negative individual costs: %+v", r)
	}
	if r.TotalBoth < r.TotalFwd || r.TotalBoth < r.TotalCont {
		t.Errorf("combined cost below an individual cost: %+v", r)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "interaction") {
		t.Error("render missing interaction verdict")
	}
}

func TestStallSweep(t *testing.T) {
	r, err := StallSweep(fewBench())
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Rows() != 4 { // 3 benchmarks + AVE
		t.Fatalf("rows = %d", r.Table.Rows())
	}
	for i := 0; i < r.Table.Rows(); i++ {
		for c := range r.Thresholds {
			v := r.Table.Value(i, c)
			if v < 0.9 || v > 2 {
				t.Errorf("%s thr=%v: normalized CPI %v implausible",
					r.Table.Label(i), r.Thresholds[c], v)
			}
		}
	}
}
