package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/xrand"
)

// SlackStudyResult quantifies Section 4's argument for LoC over slack:
// global slack is plentiful in aggregate (so non-critical dataflow
// tolerates clustering) but varies so much per static instruction that it
// resists the static summary a predictor needs.
type SlackStudyResult struct {
	Table *stats.Table
	// Averages across benchmarks.
	MeanZeroFrac  float64 // dynamic instructions with zero slack
	MeanGEFwdFrac float64 // instructions tolerating one forwarding hop
	MeanStaticSD  float64 // per-PC slack standard deviation
	MeanBranchBi  float64 // mispredicted branches with zero slack
}

// SlackStudy measures slack distributions on the 4x2w focused machine.
func SlackStudy(opts Options) (*SlackStudyResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Slack analysis (4x2w, focused): why LoC beats slack as a static metric",
		Columns: []string{"mean", "zero-frac", ">=fwd", ">=10", "perPC-sd", "misbr-zero"}}
	rows, err := parBench(opts, func(bench string) ([]float64, error) {
		cs, err := analysis(opts, bench, 4, StackFocused)
		if err != nil {
			return nil, err
		}
		s := cs.Slack
		return []float64{s.MeanSlack, s.ZeroFrac, s.GEFwdFrac, s.GE10Frac,
			s.StaticStdDev, s.BimodalBranchFrac}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i]...)
	}
	means := t.ColumnMeans()
	t.AddRow("AVE", means...)
	return &SlackStudyResult{Table: t, MeanZeroFrac: means[1],
		MeanGEFwdFrac: means[2], MeanStaticSD: means[4], MeanBranchBi: means[5]}, nil
}

// Render writes the slack table.
func (r *SlackStudyResult) Render(w io.Writer) { r.Table.Render(w) }

// DetectorCompareResult contrasts the idealized epoch-graph detector with
// the hardware-style token-passing detector the paper's conclusion calls
// for, both driving the stall-over-steer policy on the 8x1w machine.
type DetectorCompareResult struct {
	Table *stats.Table // per benchmark: normalized CPI under each detector
	// TokenPenaltyDelta is the mean extra normalized CPI the token
	// detector costs relative to the graph detector.
	TokenPenaltyDelta float64
}

// DetectorCompare runs both detectors.
func DetectorCompare(opts Options) (*DetectorCompareResult, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Criticality detectors: epoch-graph vs token-passing (8x1w, stall-over-steer)",
		Columns: []string{"graph", "token"}}
	rows, err := parBench(opts, func(bench string) ([2]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return [2]float64{}, err
		}
		base, err := runStack(opts, bench, tr, 1, StackLoC, false)
		if err != nil {
			return [2]float64{}, err
		}
		graph, err := runStack(opts, bench, tr, 8, StackStall, false)
		if err != nil {
			return [2]float64{}, err
		}

		// Token-detector-driven machine.
		cfg := machine.NewConfig(8)
		cfg.FwdLatency = opts.Fwd
		cfg.SchedMode = machine.SchedLoC
		binary := predictor.NewDefaultBinary()
		loc := predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "tok-loc")))
		det := critpath.NewTokenDetector(binary, loc, xrand.New(seedFor(opts.Seed, bench, "tok")))
		m, err := machine.New(cfg, tr, &steer.StallOverSteer{}, machine.Hooks{
			Binary: binary, LoC: loc, OnCommitInst: det.OnCommit,
		})
		if err != nil {
			return [2]float64{}, err
		}
		det.Bind(m)
		tokRes := m.Run()
		return [2]float64{graph.res.CPI() / base.res.CPI(),
			tokRes.CPI() / base.res.CPI()}, nil
	})
	if err != nil {
		return nil, err
	}
	var deltas []float64
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i][0], rows[i][1])
		deltas = append(deltas, rows[i][1]-rows[i][0])
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	return &DetectorCompareResult{Table: t, TokenPenaltyDelta: stats.Mean(deltas)}, nil
}

// Render writes the comparison.
func (r *DetectorCompareResult) Render(w io.Writer) {
	r.Table.Render(w)
	fmt.Fprintf(w, "token detector costs %+.3f normalized CPI on average vs the graph detector\n",
		r.TokenPenaltyDelta)
}

// WindowSweepResult is the window-partition ablation: how much of the
// 8x1w penalty is scheduling-window pressure (the mechanism behind
// Figure 9's load-balance spreading).
type WindowSweepResult struct {
	Windows []int
	Avg     []float64 // normalized CPI per window size
}

// WindowSweep runs the 8-cluster machine with progressively larger
// per-cluster windows under stall-over-steer.
func WindowSweep(opts Options) (*WindowSweepResult, error) {
	opts = opts.withDefaults()
	r := &WindowSweepResult{Windows: []int{8, 16, 32}}
	rows, err := parBench(opts, func(bench string) ([]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return nil, err
		}
		base, err := runStack(opts, bench, tr, 1, StackLoC, false)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(r.Windows))
		for i, win := range r.Windows {
			cfg := machine.NewConfig(8)
			cfg.FwdLatency = opts.Fwd
			cfg.SchedMode = machine.SchedLoC
			cfg.WindowPerCluster = win
			binary := predictor.NewDefaultBinary()
			loc := predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "win-loc")))
			det := critpath.NewDetector(binary, loc)
			m, err := machine.New(cfg, tr, &steer.StallOverSteer{}, machine.Hooks{
				Binary: binary, LoC: loc, OnEpoch: det.OnEpoch,
			})
			if err != nil {
				return nil, err
			}
			det.Bind(m)
			res := m.Run()
			vals[i] = res.CPI() / base.res.CPI()
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	r.Avg = averageRows(rows, len(r.Windows), len(opts.Benchmarks))
	return r, nil
}

// averageRows averages per-benchmark value vectors element-wise.
func averageRows(rows [][]float64, width, benches int) []float64 {
	avg := make([]float64, width)
	for _, row := range rows {
		for i := range avg {
			avg[i] += row[i]
		}
	}
	for i := range avg {
		avg[i] /= float64(benches)
	}
	return avg
}

// Render writes the window ablation.
func (r *WindowSweepResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Window-partition ablation (8 clusters, stall-over-steer; avg normalized CPI)")
	for i, win := range r.Windows {
		fmt.Fprintf(w, "window/cluster=%-3d %8.3f\n", win, r.Avg[i])
	}
}

// BandwidthSweepResult validates the paper's unlimited-bypass-bandwidth
// assumption: with ~0.2 global values per instruction, even one or two
// broadcasts per cluster per cycle should be close to unlimited.
type BandwidthSweepResult struct {
	Limits []int // 0 = unlimited
	Avg    []float64
}

// BandwidthSweep runs the 8x1w final policy stack across bypass limits.
func BandwidthSweep(opts Options) (*BandwidthSweepResult, error) {
	opts = opts.withDefaults()
	r := &BandwidthSweepResult{Limits: []int{0, 2, 1}}
	rows, err := parBench(opts, func(bench string) ([]float64, error) {
		tr, err := genTrace(opts, bench)
		if err != nil {
			return nil, err
		}
		base, err := runStack(opts, bench, tr, 1, StackLoC, false)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(r.Limits))
		for i, lim := range r.Limits {
			cfg := machine.NewConfig(8)
			cfg.FwdLatency = opts.Fwd
			cfg.SchedMode = machine.SchedLoC
			cfg.BypassPerCluster = lim
			binary := predictor.NewDefaultBinary()
			loc := predictor.NewDefaultLoC(xrand.New(seedFor(opts.Seed, bench, "bw-loc")))
			det := critpath.NewDetector(binary, loc)
			m, err := machine.New(cfg, tr, &steer.StallOverSteer{}, machine.Hooks{
				Binary: binary, LoC: loc, OnEpoch: det.OnEpoch,
			})
			if err != nil {
				return nil, err
			}
			det.Bind(m)
			res := m.Run()
			vals[i] = res.CPI() / base.res.CPI()
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	r.Avg = averageRows(rows, len(r.Limits), len(opts.Benchmarks))
	return r, nil
}

// Render writes the bandwidth ablation.
func (r *BandwidthSweepResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Global bypass bandwidth ablation (8x1w, stall-over-steer; avg normalized CPI)")
	for i, lim := range r.Limits {
		name := fmt.Sprintf("%d/cluster/cycle", lim)
		if lim == 0 {
			name = "unlimited"
		}
		fmt.Fprintf(w, "%-18s %8.3f\n", name, r.Avg[i])
	}
}
