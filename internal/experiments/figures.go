package experiments

import (
	"fmt"
	"io"

	"clustersim/internal/engine"
	"clustersim/internal/stats"
)

// clusterCounts is the paper's clustered configurations.
var clusterCounts = []int{2, 4, 8}

// Figure2Result reproduces Figure 2: normalized CPI of idealized list
// schedules on 2-, 4- and 8-cluster machines, relative to the idealized
// monolithic schedule.
type Figure2Result struct {
	Table *stats.Table
	// DyadicCrossFrac is the fraction of cross-cluster edges whose
	// consumer is dyadic, averaged over benchmarks on the 8x1w config —
	// the convergent-dataflow indicator of Section 2.2.
	DyadicCrossFrac float64
}

// Figure2 runs the idealized study.
func Figure2(opts Options) (*Figure2Result, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Figure 2: idealized list scheduling (normalized CPI vs monolithic schedule)",
		Columns: []string{"2x4w", "4x2w", "8x1w"}}
	type row struct {
		vals       []float64
		dyadic     float64
		haveDyadic bool
	}
	rows, err := parBench(opts, func(bench string) (row, error) {
		var r row
		// The harvest (dispatch/latency/misprediction constraints from
		// the monolithic machine's retirement stream) and the schedules
		// themselves both come from the engine's caches, shared with the
		// other idealized studies: fwd-sweep, fig2-attrib and the
		// replication study resolve to the same schedule keys.
		ss, err := idealSchedules(opts, bench, StackDepBased, false, oracleSweepSpecs(opts.Fwd))
		if err != nil {
			return r, err
		}
		mono := ss[0]
		for i, k := range clusterCounts {
			s := ss[i+1]
			r.vals = append(r.vals, float64(s.Makespan)/float64(mono.Makespan))
			if k == 8 && s.CrossEdges > 0 {
				r.dyadic = float64(s.DyadicCross) / float64(s.CrossEdges)
				r.haveDyadic = true
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	var dyadicFrac []float64
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i].vals...)
		if rows[i].haveDyadic {
			dyadicFrac = append(dyadicFrac, rows[i].dyadic)
		}
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	return &Figure2Result{Table: t, DyadicCrossFrac: stats.Mean(dyadicFrac)}, nil
}

// Render writes the result.
func (r *Figure2Result) Render(w io.Writer) {
	r.Table.Render(w)
	fmt.Fprintf(w, "dyadic share of cross-cluster edges (8x1w): %.0f%%\n", r.DyadicCrossFrac*100)
}

// Figure4Result reproduces Figure 4: CPI of focused steering and
// scheduling normalized to the monolithic machine with the same policy.
type Figure4Result struct {
	Table *stats.Table
}

// Figure4 measures the state-of-the-art baseline.
func Figure4(opts Options) (*Figure4Result, error) {
	opts = opts.withDefaults()
	t := &stats.Table{Title: "Figure 4: focused steering and scheduling (normalized CPI)",
		Columns: []string{"2x4w", "4x2w", "8x1w"}}
	rows, err := parBench(opts, func(bench string) ([]float64, error) {
		// All four geometries of one benchmark run as a single fused
		// batch: one trace decode, one producer index, one shared
		// front-end profile — cached misses only, under the same SimKeys
		// solo submissions use.
		arts, err := simVariants(opts, bench, append([]int{1}, clusterCounts...),
			StackFocused, false, engine.NeedResult)
		if err != nil {
			return nil, err
		}
		base := arts[0]
		var vals []float64
		for _, out := range arts[1:] {
			vals = append(vals, out.Res.CPI()/base.Res.CPI())
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range opts.Benchmarks {
		t.AddRow(bench, rows[i]...)
	}
	t.AddRow("AVE", t.ColumnMeans()...)
	return &Figure4Result{Table: t}, nil
}

// Render writes the result.
func (r *Figure4Result) Render(w io.Writer) { r.Table.Render(w) }

// BreakdownRow is one stacked bar of Figure 5: the critical-path CPI
// decomposition for one benchmark and configuration, normalized to the
// monolithic machine's CPI (so the monolithic bar totals 1.0).
type BreakdownRow struct {
	Bench      string
	Config     string
	FwdDelay   float64
	Contention float64
	Execute    float64
	Window     float64
	Fetch      float64
	MemLatency float64
	BrMispr    float64
	Commit     float64
}

// Total returns the bar height (the configuration's normalized CPI).
func (b BreakdownRow) Total() float64 {
	return b.FwdDelay + b.Contention + b.Execute + b.Window + b.Fetch +
		b.MemLatency + b.BrMispr + b.Commit
}

// Figure5Result reproduces Figure 5 (and carries the event counts that
// become Figure 6, which analyzes the same runs).
type Figure5Result struct {
	Rows []BreakdownRow
	// Figure 6(a): contention-stall events on the critical path per
	// 1000 instructions, split by predicted criticality.
	ContCritical map[string][]float64 // config name -> per-benchmark rates
	ContOther    map[string][]float64
	// Figure 6(b): forwarding events per 1000 instructions by cause.
	FwdLoadBal map[string][]float64
	FwdDyadic  map[string][]float64
	FwdOther   map[string][]float64
	Benchmarks []string
}

// Figure5 runs focused steering on every configuration and attributes
// the critical path.
func Figure5(opts Options) (*Figure5Result, error) {
	opts = opts.withDefaults()
	r := &Figure5Result{
		ContCritical: map[string][]float64{}, ContOther: map[string][]float64{},
		FwdLoadBal: map[string][]float64{}, FwdDyadic: map[string][]float64{},
		FwdOther:   map[string][]float64{},
		Benchmarks: opts.Benchmarks,
	}
	configs := append([]int{1}, clusterCounts...)
	type rates struct {
		name                                             string
		contCrit, contOther, fwdLoadBal, fwdDyad, fwdOth float64
	}
	type benchOut struct {
		rows  []BreakdownRow
		rates []rates
	}
	outs, err := parBench(opts, func(bench string) (benchOut, error) {
		var bo benchOut
		var monoCPI float64
		for _, k := range configs {
			// The analysis is requested first so its artifact (with the
			// live machine) is what lands in the cache; the result lookup
			// below then hits it without re-simulating.
			a, err := analysis(opts, bench, k, StackFocused)
			if err != nil {
				return bo, err
			}
			out, err := sim(opts, bench, k, StackFocused, false, engine.NeedResult)
			if err != nil {
				return bo, err
			}
			if k == 1 {
				monoCPI = out.Res.CPI()
			}
			n := float64(out.Res.Insts)
			norm := 1.0 / (n * monoCPI)
			name := out.Res.ConfigName
			bo.rows = append(bo.rows, BreakdownRow{
				Bench:      bench,
				Config:     name,
				FwdDelay:   float64(a.Breakdown.FwdDelay) * norm,
				Contention: float64(a.Breakdown.Contention) * norm,
				Execute:    float64(a.Breakdown.Execute) * norm,
				Window:     float64(a.Breakdown.Window) * norm,
				Fetch:      float64(a.Breakdown.Fetch) * norm,
				MemLatency: float64(a.Breakdown.MemLatency) * norm,
				BrMispr:    float64(a.Breakdown.BrMispredict) * norm,
				Commit:     float64(a.Breakdown.Commit) * norm,
			})
			if k != 1 {
				per1k := 1000.0 / n
				bo.rates = append(bo.rates, rates{
					name:       name,
					contCrit:   float64(a.ContentionCritical) * per1k,
					contOther:  float64(a.ContentionOther) * per1k,
					fwdLoadBal: float64(a.FwdLoadBal) * per1k,
					fwdDyad:    float64(a.FwdDyadic) * per1k,
					fwdOth:     float64(a.FwdOther) * per1k,
				})
			}
		}
		return bo, nil
	})
	if err != nil {
		return nil, err
	}
	for _, bo := range outs {
		r.Rows = append(r.Rows, bo.rows...)
		for _, rt := range bo.rates {
			r.ContCritical[rt.name] = append(r.ContCritical[rt.name], rt.contCrit)
			r.ContOther[rt.name] = append(r.ContOther[rt.name], rt.contOther)
			r.FwdLoadBal[rt.name] = append(r.FwdLoadBal[rt.name], rt.fwdLoadBal)
			r.FwdDyadic[rt.name] = append(r.FwdDyadic[rt.name], rt.fwdDyad)
			r.FwdOther[rt.name] = append(r.FwdOther[rt.name], rt.fwdOth)
		}
	}
	return r, nil
}

// Render writes the Figure 5 stacked breakdown.
func (r *Figure5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: critical-path breakdown (normalized CPI; columns stack to the bar height)")
	fmt.Fprintf(w, "%-8s %-5s %6s %6s %6s %6s %6s %6s %6s %6s %7s\n",
		"bench", "cfg", "fwd", "cont", "exec", "win", "fetch", "mem", "brmis", "commit", "total")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %-5s %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f %7.3f\n",
			row.Bench, row.Config, row.FwdDelay, row.Contention, row.Execute,
			row.Window, row.Fetch, row.MemLatency, row.BrMispr, row.Commit, row.Total())
	}
}

// RenderFigure6 writes the event breakdowns of Figure 6.
func (r *Figure5Result) RenderFigure6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6a: critical contention stalls per 1000 instructions (critical vs other)")
	fmt.Fprintf(w, "%-6s %10s %10s %10s\n", "cfg", "critical", "other", "crit-share")
	for _, cfgName := range []string{"2x4w", "4x2w", "8x1w"} {
		c := stats.Mean(r.ContCritical[cfgName])
		o := stats.Mean(r.ContOther[cfgName])
		share := 0.0
		if c+o > 0 {
			share = c / (c + o)
		}
		fmt.Fprintf(w, "%-6s %10.2f %10.2f %9.0f%%\n", cfgName, c, o, share*100)
	}
	fmt.Fprintln(w, "Figure 6b: critical forwarding events per 1000 instructions by cause")
	fmt.Fprintf(w, "%-6s %10s %10s %10s\n", "cfg", "loadbal", "dyadic", "other")
	for _, cfgName := range []string{"2x4w", "4x2w", "8x1w"} {
		fmt.Fprintf(w, "%-6s %10.2f %10.2f %10.2f\n", cfgName,
			stats.Mean(r.FwdLoadBal[cfgName]), stats.Mean(r.FwdDyadic[cfgName]),
			stats.Mean(r.FwdOther[cfgName]))
	}
}
