// Package clustersim is a library-level reproduction of Salverda &
// Zilles, "A Criticality Analysis of Clustering in Superscalar
// Processors" (MICRO 2005).
//
// It bundles a trace-driven, cycle-level simulator of clustered
// out-of-order superscalar processors, synthetic SPEC-int-like workload
// generators, the Fields et al. critical-path model with an online
// criticality detector, likelihood-of-criticality (LoC) predictors, the
// paper's steering/scheduling policies (dependence-based, focused, LoC,
// stall-over-steer, proactive load-balancing), and an idealized oracle
// list scheduler.
//
// Quick start:
//
//	tr, _ := clustersim.GenerateTrace("vpr", 200_000, 1)
//	sim, _ := clustersim.NewSim(clustersim.NewConfig(4), tr, clustersim.SimOptions{Policy: "focused"})
//	res := sim.Run()
//	fmt.Println(res.CPI())
//
// The experiment drivers that regenerate every figure of the paper live
// in internal/experiments and are exposed through cmd/clustersim.
package clustersim

import (
	"fmt"
	"io"

	"clustersim/internal/critpath"
	"clustersim/internal/listsched"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
	"clustersim/internal/xrand"
)

// Re-exported core types. See the internal packages for full
// documentation of each.
type (
	// Config describes a machine configuration (Table 1 partitioning).
	Config = machine.Config
	// Result summarizes one simulation run.
	Result = machine.Result
	// Trace is a dynamic instruction trace with dependence annotations.
	Trace = trace.Trace
	// CriticalPath is a critical-path analysis with cycle attribution.
	CriticalPath = critpath.Analysis
	// Breakdown attributes critical-path cycles to causes (Figure 5).
	Breakdown = critpath.Breakdown
	// ConsumerStats is the Section 6 producer/consumer analysis.
	ConsumerStats = critpath.ConsumerStats
	// SteerPolicy decides cluster assignment at dispatch.
	SteerPolicy = machine.SteerPolicy
	// SchedMode selects the per-cluster scheduling priority.
	SchedMode = machine.SchedMode
	// Schedule is an idealized list-scheduler output (Section 2.2).
	Schedule = listsched.Schedule
)

// Scheduling modes.
const (
	SchedAge            = machine.SchedAge
	SchedBinaryCritical = machine.SchedBinaryCritical
	SchedLoC            = machine.SchedLoC
)

// NewConfig partitions the paper's 8-wide machine among 1, 2, 4 or 8
// clusters (the 1x8w, 2x4w, 4x2w and 8x1w configurations).
func NewConfig(clusters int) Config { return machine.NewConfig(clusters) }

// Benchmarks returns the names of the twelve SPEC-int-like synthetic
// workloads.
func Benchmarks() []string { return workload.Names() }

// GenerateTrace synthesizes n dynamic instructions of the named
// benchmark, deterministically in seed.
func GenerateTrace(bench string, n int, seed uint64) (*Trace, error) {
	return workload.Generate(bench, n, seed)
}

// PolicyNames lists the steering policies NewPolicy accepts, in the
// paper's order of introduction.
func PolicyNames() []string {
	return []string{"depbased", "focused", "loc", "stall-over-steer", "proactive", "readybalance"}
}

// NewPolicy constructs a steering policy by name.
func NewPolicy(name string) (SteerPolicy, error) {
	switch name {
	case "depbased":
		return steer.DepBased{}, nil
	case "focused":
		return steer.Focused{}, nil
	case "loc":
		return steer.LoC{}, nil
	case "stall-over-steer", "stall":
		return &steer.StallOverSteer{}, nil
	case "proactive":
		return steer.NewProactive(), nil
	case "readybalance":
		// Extension beyond the paper: proactive load-balancing driven by
		// per-cluster ready-instruction counts (the conclusion's "view of
		// instruction readiness").
		return steer.NewReadyBalance(), nil
	}
	return nil, fmt.Errorf("clustersim: unknown policy %q (have %v)", name, PolicyNames())
}

// SimOptions configures NewSim.
type SimOptions struct {
	// Policy is one of PolicyNames(); default "focused".
	Policy string
	// Sched overrides the scheduling mode; by default it follows the
	// policy ("focused" uses binary-criticality scheduling, the LoC-based
	// policies use LoC scheduling, "depbased" uses age).
	Sched *SchedMode
	// Seed drives the LoC predictor's probabilistic updates.
	Seed uint64
	// TrackExact keeps unlimited-precision criticality frequencies for
	// LoCHistogram and ConsumerStats (small extra memory).
	TrackExact bool
	// EpochLen overrides the criticality-detector epoch length.
	EpochLen int64
}

// Sim couples a machine with criticality predictors and the online
// critical-path detector, wired the way the paper's pipeline is.
type Sim struct {
	m        *machine.Machine
	detector *critpath.Detector
	exact    *predictor.Exact
	ran      bool
}

// NewSim builds a simulator for cfg over tr.
func NewSim(cfg Config, tr *Trace, opt SimOptions) (*Sim, error) {
	if opt.Policy == "" {
		opt.Policy = "focused"
	}
	pol, err := NewPolicy(opt.Policy)
	if err != nil {
		return nil, err
	}
	if opt.Sched != nil {
		cfg.SchedMode = *opt.Sched
	} else {
		switch opt.Policy {
		case "depbased":
			cfg.SchedMode = machine.SchedAge
		case "focused":
			cfg.SchedMode = machine.SchedBinaryCritical
		default:
			cfg.SchedMode = machine.SchedLoC
		}
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	hooks := machine.Hooks{
		Binary:   predictor.NewDefaultBinary(),
		LoC:      predictor.NewDefaultLoC(xrand.New(seed)),
		EpochLen: opt.EpochLen,
	}
	det := critpath.NewDetector(hooks.Binary, hooks.LoC)
	var exact *predictor.Exact
	if opt.TrackExact {
		exact = predictor.NewExact()
		det.TrackExact(exact)
	}
	hooks.OnEpoch = det.OnEpoch
	m, err := machine.New(cfg, tr, pol, hooks)
	if err != nil {
		return nil, err
	}
	det.Bind(m)
	return &Sim{m: m, detector: det, exact: exact}, nil
}

// Run simulates the whole trace.
func (s *Sim) Run() Result {
	s.ran = true
	return s.m.Run()
}

// Machine exposes the underlying machine (events, config, trace).
func (s *Sim) Machine() *machine.Machine { return s.m }

// CriticalPath walks the completed run's critical path and attributes
// its cycles. Call after Run.
func (s *Sim) CriticalPath() (*CriticalPath, error) {
	if !s.ran {
		return nil, fmt.Errorf("clustersim: CriticalPath before Run")
	}
	return critpath.AnalyzeRun(s.m)
}

// ConsumerStats runs the Section 6 producer/consumer analysis. Requires
// SimOptions.TrackExact and a completed Run.
func (s *Sim) ConsumerStats() (ConsumerStats, error) {
	if s.exact == nil {
		return ConsumerStats{}, fmt.Errorf("clustersim: ConsumerStats requires TrackExact")
	}
	if !s.ran {
		return ConsumerStats{}, fmt.Errorf("clustersim: ConsumerStats before Run")
	}
	return critpath.AnalyzeConsumers(s.m.Trace(), s.exact), nil
}

// LoCHistogram returns the dynamic-instruction-weighted LoC distribution
// in percent per bin (Figure 8). Requires SimOptions.TrackExact.
func (s *Sim) LoCHistogram(bins int) ([]float64, error) {
	if s.exact == nil {
		return nil, fmt.Errorf("clustersim: LoCHistogram requires TrackExact")
	}
	return s.exact.Histogram(bins), nil
}

// Exact returns the unlimited-precision criticality tracker, or nil if
// the Sim was created without TrackExact.
func (s *Sim) Exact() *predictor.Exact { return s.exact }

// Slack computes every instruction's global slack (Fields et al. '02)
// for a completed run, plus its summary statistics.
func (s *Sim) Slack() ([]int64, critpath.SlackSummary, error) {
	if !s.ran {
		return nil, critpath.SlackSummary{}, fmt.Errorf("clustersim: Slack before Run")
	}
	slack, err := critpath.ComputeSlack(s.m)
	if err != nil {
		return nil, critpath.SlackSummary{}, err
	}
	return slack, critpath.SummarizeSlack(s.m, slack), nil
}

// WriteTimeline renders a readable pipeline diagram of instructions
// [from, to) of a completed run (at most 64 instructions).
func (s *Sim) WriteTimeline(w io.Writer, from, to int64) error {
	if !s.ran {
		return fmt.Errorf("clustersim: WriteTimeline before Run")
	}
	return machine.WriteTimeline(w, s.m, from, to)
}

// IdealizedSchedule list-schedules the trace of a completed monolithic
// run onto the given configuration with the Section 2.2 oracle priority,
// returning the idealized schedule the paper's Figure 2 is built from.
// The receiver must be a 1-cluster Sim that has Run.
func (s *Sim) IdealizedSchedule(target Config) (*Schedule, error) {
	if !s.ran {
		return nil, fmt.Errorf("clustersim: IdealizedSchedule before Run")
	}
	if s.m.Config().Clusters != 1 {
		return nil, fmt.Errorf("clustersim: IdealizedSchedule needs a monolithic (1-cluster) run, have %s",
			s.m.Config().Name())
	}
	in := listsched.FromMachineRun(s.m)
	return listsched.Run(in, listsched.ConfigFor(target), listsched.NewOracle(in))
}
