package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/metrics"
	"clustersim/internal/server"
)

// serveMain runs `clustersim serve`: the multi-tenant simulation service
// (see internal/server). One shared engine backs every tenant, so
// identical work submitted by different tenants caches and deduplicates
// across the fleet.
func serveMain(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "engine worker-pool size")
	replayWorkers := fs.Int("replay-workers", 0, "default intra-job variant fan-out width (0: a per-job share of GOMAXPROCS); the server clamps per-job requests queue-aware")
	cacheDir := fs.String("cache-dir", "", "on-disk cache directory (empty: memory only)")
	cacheMem := fs.Int64("cache-mem", engine.DefaultMaxCacheBytes>>20, "in-memory cache budget in MiB (<0: unlimited)")
	tenantsFlag := fs.String("tenants", "", `tenant fair-share weights as "name:weight,name:weight" (empty: single "default" tenant)`)
	queueMax := fs.Int("queue", 256, "max queued jobs before submissions get 429")
	runners := fs.Int("runners", 0, "concurrent job executors (0: GOMAXPROCS)")
	maxInsts := fs.Int("max-insts", 2_000_000, "per-benchmark instruction cap on submitted specs")
	jobLog := fs.String("job-log", "", "durable job log path: accepted jobs are fsynced there before the 202 and replayed on restart (empty: in-memory only)")
	jobDeadline := fs.Duration("job-deadline", 0, "default stuck-job watchdog deadline per job (0: none)")
	maxJobDeadline := fs.Duration("max-job-deadline", 0, "clamp on spec-requested deadline_secs (0: no clamp)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM/SIGINT lets running jobs finish before cancelling them")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slow-loris guard)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout (0: none; SSE responses are unaffected)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: clustersim serve [flags]")
		fmt.Fprintln(os.Stderr, "serves the multi-tenant job API (see internal/server for endpoints)")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim serve:", err)
		return 2
	}

	reg := metrics.NewRegistry()
	eng := engine.New(engine.Config{
		Workers:       *jobs,
		ReplayWorkers: *replayWorkers,
		CacheDir:      *cacheDir,
		MaxCacheBytes: *cacheMem * (1 << 20),
		Metrics:       reg,
	})
	if err := eng.Summary().DiskErr; err != nil {
		fmt.Fprintf(os.Stderr, "clustersim serve: disk cache disabled: %v\n", err)
	}
	srv, err := server.New(server.Config{
		Engine:             eng,
		Metrics:            reg,
		Tenants:            tenants,
		MaxQueue:           *queueMax,
		Runners:            *runners,
		MaxInsts:           *maxInsts,
		JobLog:             *jobLog,
		DefaultJobDeadline: *jobDeadline,
		MaxJobDeadline:     *maxJobDeadline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim serve:", err)
		return 1
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim serve:", err)
		return 1
	}
	hs := newHTTPServer(srv.Handler(), *readHeaderTimeout, *readTimeout, *idleTimeout)
	fmt.Fprintf(os.Stderr, "clustersim serve: listening on http://%s (POST /v1/jobs; /metrics; /v1/stats)\n", ln.Addr())

	// SIGTERM (what orchestrators send) and SIGINT both begin a graceful
	// drain: stop admitting, let running jobs finish within -drain-timeout
	// (queued jobs stay persisted in the job log), then shut the HTTP
	// listener down with its own bound so one hung SSE client cannot block
	// the exit forever.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "clustersim serve: draining")
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		ds := srv.Drain(dctx)
		dcancel()
		fmt.Fprintf(os.Stderr, "clustersim serve: drain done: %d completed, %d persisted for restart, %d aborted\n",
			ds.Completed, ds.Persisted, ds.Aborted)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := hs.Shutdown(sctx); err != nil {
			hs.Close() // hung connections: close them rather than hang the exit
		}
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "clustersim serve:", err)
		return 1
	}
	srv.Close()
	eng.RenderSummary(os.Stderr)
	return 0
}

// newHTTPServer hardens the listener against misbehaving clients: a
// slow-loris connection trickling header bytes is cut at
// readHeaderTimeout, a stalled request body at readTimeout, and idle
// keep-alive connections are reaped at idleTimeout. WriteTimeout stays 0
// because SSE streams are legitimately long-lived; dead SSE clients are
// reaped by the server's heartbeat instead.
func newHTTPServer(h http.Handler, readHeaderTimeout, readTimeout, idleTimeout time.Duration) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// parseTenants parses "name:weight,name:weight" (weight optional,
// default 1).
func parseTenants(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	tenants := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, weightStr, hasWeight := strings.Cut(strings.TrimSpace(part), ":")
		if name == "" {
			return nil, fmt.Errorf("empty tenant name in -tenants %q", s)
		}
		weight := 1.0
		if hasWeight {
			var err error
			weight, err = strconv.ParseFloat(weightStr, 64)
			if err != nil || weight <= 0 {
				return nil, fmt.Errorf("bad weight %q for tenant %q", weightStr, name)
			}
		}
		tenants[name] = weight
	}
	return tenants, nil
}
