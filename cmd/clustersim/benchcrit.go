package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"clustersim/internal/critpath"
	"clustersim/internal/machine"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// critBenchPoint is one (benchmark, cluster count) cell of the critical-
// path analysis sweep: the fused 16-scenario replay on a pooled analyzer
// against the per-scenario SimulatedTime oracle (16 independent forward
// passes, each with fresh scratch).
type critBenchPoint struct {
	Bench    string `json:"bench"`
	Clusters int    `json:"clusters"`
	Insts    int    `json:"insts"`
	Runs     int    `json:"runs"`

	FusedNsPerRun  float64 `json:"fused_ns_per_run"`
	OracleNsPerRun float64 `json:"oracle_ns_per_run"`
	Speedup        float64 `json:"speedup"`

	FusedAllocsPerRun  float64 `json:"fused_allocs_per_run"`
	OracleAllocsPerRun float64 `json:"oracle_allocs_per_run"`
	AllocRatio         float64 `json:"alloc_ratio"`
}

// critBenchReport is the BENCH_critpath.json schema; CI uploads it so the
// analysis-throughput trajectory is tracked per commit.
type critBenchReport struct {
	Schema            string           `json:"schema"`
	GoVersion         string           `json:"go_version"`
	Insts             int              `json:"insts"`
	Seed              uint64           `json:"seed"`
	Scenarios         int              `json:"scenarios"`
	Points            []critBenchPoint `json:"points"`
	GeomeanSpeedup    float64          `json:"geomean_speedup"`
	GeomeanAllocRatio float64          `json:"geomean_alloc_ratio"`
}

// runBenchCritJSON executes the critical-path analysis sweep (full 2^4
// zero-set lattice on completed runs across 1/2/4 clusters) and writes
// the report. Fused and oracle results are cross-checked for equality on
// every point before timing, so the sweep doubles as a differential gate.
func runBenchCritJSON(path string, insts int, seed uint64, benches []string) error {
	if len(benches) == 0 {
		benches = []string{"gzip", "vpr", "gcc", "mcf"}
	}
	zeros := make([]critpath.ZeroSet, critpath.NumScenarios)
	for mask := range zeros {
		zeros[mask] = critpath.MaskZeroSet(mask)
	}
	rep := critBenchReport{
		Schema:    "clustersim/bench-critpath/v1",
		GoVersion: runtime.Version(),
		Insts:     insts,
		Seed:      seed,
		Scenarios: critpath.NumScenarios,
	}
	logSpeed := 0.0
	logAlloc := 0.0
	az := critpath.NewAnalyzer()
	defer az.Recycle()
	for _, bench := range benches {
		tr, err := workload.Generate(bench, insts, seed)
		if err != nil {
			return err
		}
		for _, clusters := range []int{1, 2, 4} {
			m, err := machine.New(machine.NewConfig(clusters), tr, steer.DepBased{}, machine.Hooks{})
			if err != nil {
				return err
			}
			m.Run()

			// Differential gate before timing anything.
			fusedRT, err := az.ReplayScenarios(m, zeros)
			if err != nil {
				return err
			}
			for mask, z := range zeros {
				want, err := critpath.SimulatedTime(m, z)
				if err != nil {
					return err
				}
				if fusedRT[mask] != want {
					return fmt.Errorf("%s %dx mask %04b: fused %d != oracle %d",
						bench, clusters, mask, fusedRT[mask], want)
				}
			}

			fused := func() {
				if _, err := az.ReplayScenarios(m, zeros); err != nil {
					panic(err)
				}
			}
			oracle := func() {
				for _, z := range zeros {
					if _, err := critpath.SimulatedTime(m, z); err != nil {
						panic(err)
					}
				}
			}
			fNs, fAllocs, runs := measure(fused, 3, 150*time.Millisecond)
			oNs, oAllocs, _ := measure(oracle, 3, 150*time.Millisecond)

			pt := critBenchPoint{
				Bench: bench, Clusters: clusters, Insts: insts,
				Runs:          runs,
				FusedNsPerRun: fNs, OracleNsPerRun: oNs,
				Speedup:           oNs / fNs,
				FusedAllocsPerRun: fAllocs, OracleAllocsPerRun: oAllocs,
				AllocRatio:        oAllocs / math.Max(fAllocs, 1),
			}
			rep.Points = append(rep.Points, pt)
			logSpeed += math.Log(pt.Speedup)
			logAlloc += math.Log(pt.AllocRatio)
			fmt.Fprintf(os.Stderr, "critbench %-6s %dx: fused %.2fms oracle %.2fms speedup %.2fx allocs %.0f vs %.0f (%.0fx)\n",
				bench, clusters, fNs/1e6, oNs/1e6, pt.Speedup, fAllocs, oAllocs, pt.AllocRatio)
		}
	}
	n := float64(len(rep.Points))
	rep.GeomeanSpeedup = math.Exp(logSpeed / n)
	rep.GeomeanAllocRatio = math.Exp(logAlloc / n)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "geomean speedup %.2fx, geomean alloc ratio %.1fx -> %s\n",
		rep.GeomeanSpeedup, rep.GeomeanAllocRatio, path)
	return nil
}
