package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"time"

	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// benchPoint is one (benchmark, cluster count) cell of the Figure-4-style
// machine sweep: the wakeup-driven scheduler with pooled machines against
// the pre-optimization full-scan loop with per-run allocation.
type benchPoint struct {
	Bench    string `json:"bench"`
	Clusters int    `json:"clusters"`
	Insts    int    `json:"insts"`
	Runs     int    `json:"runs"`

	WakeupNsPerRun float64 `json:"wakeup_ns_per_run"`
	OracleNsPerRun float64 `json:"oracle_ns_per_run"`
	Speedup        float64 `json:"speedup"`

	// VariantsNsPerRun is this cell's share of one fused SimulateVariants
	// call batching the whole cluster sweep of its benchmark (total fused
	// time divided by the number of geometries); VariantsSpeedup compares
	// it against running this cell alone on the wakeup scheduler. The
	// fused run is gated byte-identical to the solo runs before timing.
	VariantsNsPerRun float64 `json:"variants_ns_per_run"`
	VariantsSpeedup  float64 `json:"variants_speedup"`

	// ParallelNsPerRun is the same fused batch replayed across
	// ReplayWorkers workers (per-variant share); ParallelSpeedup is the
	// serial-fused over parallel-fused ratio. The parallel path is gated
	// byte-identical to solo runs before timing, same as the serial one.
	ReplayWorkers    int     `json:"replay_workers"`
	ParallelNsPerRun float64 `json:"parallel_ns_per_run"`
	ParallelSpeedup  float64 `json:"parallel_speedup"`

	WakeupAllocsPerRun float64 `json:"wakeup_allocs_per_run"`
	OracleAllocsPerRun float64 `json:"oracle_allocs_per_run"`
	AllocRatio         float64 `json:"alloc_ratio"`

	WakeupMInstsPerSec float64 `json:"wakeup_minsts_per_sec"`
}

// benchReport is the BENCH_machine.json schema; CI uploads it so the
// simulator-throughput trajectory is tracked per commit.
type benchReport struct {
	Schema                 string       `json:"schema"`
	GoVersion              string       `json:"go_version"`
	MaxProcs               int          `json:"maxprocs"`
	Insts                  int          `json:"insts"`
	Seed                   uint64       `json:"seed"`
	Points                 []benchPoint `json:"points"`
	GeomeanSpeedup         float64      `json:"geomean_speedup"`
	GeomeanVariantsSpeedup float64      `json:"geomean_variants_speedup"`
	GeomeanParallelSpeedup float64      `json:"geomean_parallel_speedup"`
	GeomeanAllocRatio      float64      `json:"geomean_alloc_ratio"`
}

// measure times runs of fn until minDuration has elapsed (at least
// minRuns), returning ns/run and heap allocations/run.
func measure(fn func(), minRuns int, minDuration time.Duration) (nsPerRun, allocsPerRun float64, runs int) {
	fn() // warm caches and the machine pool outside the timed region
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for runs < minRuns || time.Since(start) < minDuration {
		fn()
		runs++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(runs),
		float64(after.Mallocs-before.Mallocs) / float64(runs), runs
}

// gateVariants is the differential gate run before any fused timing: the
// fused batch (built from fused, replayed across workers) must produce
// results and per-event timelines byte-identical to solo wakeup runs of
// the same variants (built independently via solo, so neither set
// shares predictor state).
func gateVariants(tr *trace.Trace, fused, solo []machine.Variant, workers int) error {
	outs, _, err := machine.SimulateVariantsOpts(tr, fused, machine.VariantsOptions{Workers: workers})
	if err != nil {
		return err
	}
	defer func() {
		for _, o := range outs {
			machine.Recycle(o.M)
		}
	}()
	for i := range outs {
		m, err := machine.New(solo[i].Config, tr, solo[i].Pol, solo[i].Hooks)
		if err != nil {
			return err
		}
		res := m.Run()
		if !reflect.DeepEqual(outs[i].Res, res) {
			return fmt.Errorf("variants gate: geometry %d result diverged from solo run", i)
		}
		sev, fev := m.Events(), outs[i].M.Events()
		for s := range fev {
			if fev[s] != sev[s] {
				return fmt.Errorf("variants gate: geometry %d event %d diverged from solo run", i, s)
			}
		}
	}
	return nil
}

// runBenchJSON executes the machine sweep (the Figure 4 benchmark set
// across 1/2/4 clusters under the focused stack) and writes the report.
func runBenchJSON(path string, insts int, seed uint64, fwd int, benches []string) error {
	if len(benches) == 0 {
		benches = []string{"gzip", "vpr", "gcc", "mcf"}
	}
	replayWorkers := runtime.NumCPU()
	rep := benchReport{
		Schema:    "clustersim/bench-machine/v2",
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Insts:     insts,
		Seed:      seed,
	}
	clusterList := []int{1, 2, 4}
	logSpeed := 0.0
	logVariants := 0.0
	logParallel := 0.0
	logAlloc := 0.0
	for _, bench := range benches {
		tr, err := workload.Generate(bench, insts, seed)
		if err != nil {
			return err
		}
		mkCfg := func(clusters int) machine.Config {
			cfg := machine.NewConfig(clusters)
			cfg.FwdLatency = fwd
			cfg.SchedMode = machine.SchedBinaryCritical
			return cfg
		}
		var pts []benchPoint
		for _, clusters := range clusterList {
			cfg := mkCfg(clusters)

			run := func(oracle bool) func() {
				return func() {
					hooks := machine.Hooks{Binary: predictor.NewDefaultBinary()}
					var m *machine.Machine
					var err error
					if oracle {
						m, err = machine.New(cfg, tr, steer.Focused{}, hooks)
					} else {
						m, err = machine.NewPooled(cfg, tr, steer.Focused{}, hooks)
					}
					if err != nil {
						panic(err)
					}
					if oracle {
						m.UseOracleIssue(true)
					}
					m.Run()
					if !oracle {
						machine.Recycle(m)
					}
				}
			}
			wNs, wAllocs, runs := measure(run(false), 3, 150*time.Millisecond)
			oNs, oAllocs, _ := measure(run(true), 3, 150*time.Millisecond)

			pts = append(pts, benchPoint{
				Bench: bench, Clusters: clusters, Insts: insts,
				Runs:           runs,
				WakeupNsPerRun: wNs, OracleNsPerRun: oNs,
				Speedup:            oNs / wNs,
				WakeupAllocsPerRun: wAllocs, OracleAllocsPerRun: oAllocs,
				AllocRatio:         oAllocs / math.Max(wAllocs, 1),
				WakeupMInstsPerSec: float64(insts) / wNs * 1e3,
			})
		}

		// The fused sweep: all geometries of this benchmark in one
		// SimulateVariants call. Gate byte-identity against solo wakeup
		// runs once, then time the fused call.
		mkVariants := func() []machine.Variant {
			vs := make([]machine.Variant, len(clusterList))
			for i, clusters := range clusterList {
				vs[i] = machine.Variant{Config: mkCfg(clusters), Pol: steer.Focused{},
					Hooks: machine.Hooks{Binary: predictor.NewDefaultBinary()}}
			}
			return vs
		}
		if err := gateVariants(tr, mkVariants(), mkVariants(), 1); err != nil {
			return fmt.Errorf("bench %s (serial fused): %w", bench, err)
		}
		if err := gateVariants(tr, mkVariants(), mkVariants(), replayWorkers); err != nil {
			return fmt.Errorf("bench %s (parallel fused, %d workers): %w", bench, replayWorkers, err)
		}
		timeFused := func(workers int) float64 {
			ns, _, _ := measure(func() {
				outs, _, err := machine.SimulateVariantsOpts(tr, mkVariants(),
					machine.VariantsOptions{Workers: workers})
				if err != nil {
					panic(err)
				}
				for _, o := range outs {
					machine.Recycle(o.M)
				}
			}, 3, 150*time.Millisecond)
			return ns
		}
		vNs := timeFused(1)
		pNs := timeFused(replayWorkers)
		perVariant := vNs / float64(len(clusterList))
		perParallel := pNs / float64(len(clusterList))

		for i := range pts {
			pts[i].VariantsNsPerRun = perVariant
			pts[i].VariantsSpeedup = pts[i].WakeupNsPerRun / perVariant
			pts[i].ReplayWorkers = replayWorkers
			pts[i].ParallelNsPerRun = perParallel
			pts[i].ParallelSpeedup = vNs / pNs
			rep.Points = append(rep.Points, pts[i])
			logSpeed += math.Log(pts[i].Speedup)
			logVariants += math.Log(pts[i].VariantsSpeedup)
			logParallel += math.Log(pts[i].ParallelSpeedup)
			logAlloc += math.Log(pts[i].AllocRatio)
			fmt.Fprintf(os.Stderr, "bench %-6s %dx: wakeup %.1fms oracle %.1fms variants %.1fms parallel %.1fms (%d workers) speedup %.2fx variants %.2fx parallel %.2fx allocs %.0f vs %.0f (%.0fx)\n",
				pts[i].Bench, pts[i].Clusters, pts[i].WakeupNsPerRun/1e6, pts[i].OracleNsPerRun/1e6,
				perVariant/1e6, perParallel/1e6, replayWorkers, pts[i].Speedup, pts[i].VariantsSpeedup,
				pts[i].ParallelSpeedup,
				pts[i].WakeupAllocsPerRun, pts[i].OracleAllocsPerRun, pts[i].AllocRatio)
		}
	}
	n := float64(len(rep.Points))
	rep.GeomeanSpeedup = math.Exp(logSpeed / n)
	rep.GeomeanVariantsSpeedup = math.Exp(logVariants / n)
	rep.GeomeanParallelSpeedup = math.Exp(logParallel / n)
	rep.GeomeanAllocRatio = math.Exp(logAlloc / n)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "geomean speedup %.2fx, geomean variants speedup %.2fx, geomean parallel speedup %.2fx (%d workers), geomean alloc ratio %.1fx -> %s\n",
		rep.GeomeanSpeedup, rep.GeomeanVariantsSpeedup, rep.GeomeanParallelSpeedup, replayWorkers, rep.GeomeanAllocRatio, path)
	return nil
}
