package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// benchPoint is one (benchmark, cluster count) cell of the Figure-4-style
// machine sweep: the wakeup-driven scheduler with pooled machines against
// the pre-optimization full-scan loop with per-run allocation.
type benchPoint struct {
	Bench    string `json:"bench"`
	Clusters int    `json:"clusters"`
	Insts    int    `json:"insts"`
	Runs     int    `json:"runs"`

	WakeupNsPerRun float64 `json:"wakeup_ns_per_run"`
	OracleNsPerRun float64 `json:"oracle_ns_per_run"`
	Speedup        float64 `json:"speedup"`

	WakeupAllocsPerRun float64 `json:"wakeup_allocs_per_run"`
	OracleAllocsPerRun float64 `json:"oracle_allocs_per_run"`
	AllocRatio         float64 `json:"alloc_ratio"`

	WakeupMInstsPerSec float64 `json:"wakeup_minsts_per_sec"`
}

// benchReport is the BENCH_machine.json schema; CI uploads it so the
// simulator-throughput trajectory is tracked per commit.
type benchReport struct {
	Schema            string       `json:"schema"`
	GoVersion         string       `json:"go_version"`
	Insts             int          `json:"insts"`
	Seed              uint64       `json:"seed"`
	Points            []benchPoint `json:"points"`
	GeomeanSpeedup    float64      `json:"geomean_speedup"`
	GeomeanAllocRatio float64      `json:"geomean_alloc_ratio"`
}

// measure times runs of fn until minDuration has elapsed (at least
// minRuns), returning ns/run and heap allocations/run.
func measure(fn func(), minRuns int, minDuration time.Duration) (nsPerRun, allocsPerRun float64, runs int) {
	fn() // warm caches and the machine pool outside the timed region
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for runs < minRuns || time.Since(start) < minDuration {
		fn()
		runs++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(runs),
		float64(after.Mallocs-before.Mallocs) / float64(runs), runs
}

// runBenchJSON executes the machine sweep (the Figure 4 benchmark set
// across 1/2/4 clusters under the focused stack) and writes the report.
func runBenchJSON(path string, insts int, seed uint64, fwd int, benches []string) error {
	if len(benches) == 0 {
		benches = []string{"gzip", "vpr", "gcc", "mcf"}
	}
	rep := benchReport{
		Schema:    "clustersim/bench-machine/v1",
		GoVersion: runtime.Version(),
		Insts:     insts,
		Seed:      seed,
	}
	logSpeed := 0.0
	logAlloc := 0.0
	for _, bench := range benches {
		tr, err := workload.Generate(bench, insts, seed)
		if err != nil {
			return err
		}
		for _, clusters := range []int{1, 2, 4} {
			cfg := machine.NewConfig(clusters)
			cfg.FwdLatency = fwd
			cfg.SchedMode = machine.SchedBinaryCritical

			run := func(oracle bool) func() {
				return func() {
					hooks := machine.Hooks{Binary: predictor.NewDefaultBinary()}
					var m *machine.Machine
					var err error
					if oracle {
						m, err = machine.New(cfg, tr, steer.Focused{}, hooks)
					} else {
						m, err = machine.NewPooled(cfg, tr, steer.Focused{}, hooks)
					}
					if err != nil {
						panic(err)
					}
					if oracle {
						m.UseOracleIssue(true)
					}
					m.Run()
					if !oracle {
						machine.Recycle(m)
					}
				}
			}
			wNs, wAllocs, runs := measure(run(false), 3, 150*time.Millisecond)
			oNs, oAllocs, _ := measure(run(true), 3, 150*time.Millisecond)

			pt := benchPoint{
				Bench: bench, Clusters: clusters, Insts: insts,
				Runs:           runs,
				WakeupNsPerRun: wNs, OracleNsPerRun: oNs,
				Speedup:            oNs / wNs,
				WakeupAllocsPerRun: wAllocs, OracleAllocsPerRun: oAllocs,
				AllocRatio:         oAllocs / math.Max(wAllocs, 1),
				WakeupMInstsPerSec: float64(insts) / wNs * 1e3,
			}
			rep.Points = append(rep.Points, pt)
			logSpeed += math.Log(pt.Speedup)
			logAlloc += math.Log(pt.AllocRatio)
			fmt.Fprintf(os.Stderr, "bench %-6s %dx: wakeup %.1fms oracle %.1fms speedup %.2fx allocs %.0f vs %.0f (%.0fx)\n",
				bench, clusters, wNs/1e6, oNs/1e6, pt.Speedup, wAllocs, oAllocs, pt.AllocRatio)
		}
	}
	n := float64(len(rep.Points))
	rep.GeomeanSpeedup = math.Exp(logSpeed / n)
	rep.GeomeanAllocRatio = math.Exp(logAlloc / n)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "geomean speedup %.2fx, geomean alloc ratio %.1fx -> %s\n",
		rep.GeomeanSpeedup, rep.GeomeanAllocRatio, path)
	return nil
}
