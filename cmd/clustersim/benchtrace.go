package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/internal/machine"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// The trace-store sweep: generation, scan and windowed-simulation
// throughput of the chunked CTR2 path at 1M/10M/100M instructions, with
// peak-heap evidence that memory stays bounded by the configured chunk
// window rather than growing with trace length. Before timing anything
// the sweep re-proves the streaming differential (streamed generation ==
// in-memory generation; windowed simulation == sliced simulation), so a
// regression can never hide behind a fast number.

// traceBenchStage is one scale point of the sweep.
type traceBenchStage struct {
	Insts     int64 `json:"insts"`
	FileBytes int64 `json:"file_bytes"`

	GenSeconds     float64 `json:"gen_seconds"`
	GenInstsPerSec float64 `json:"gen_insts_per_sec"`
	GenPeakHeap    int64   `json:"gen_peak_heap_bytes"`

	ScanSeconds     float64 `json:"scan_seconds"`
	ScanInstsPerSec float64 `json:"scan_insts_per_sec"`
	ScanPeakHeap    int64   `json:"scan_peak_heap_bytes"`

	SimSeconds     float64 `json:"sim_seconds"`
	SimInstsPerSec float64 `json:"sim_insts_per_sec"`
	SimPeakHeap    int64   `json:"sim_peak_heap_bytes"`
	SimCycles      uint64  `json:"sim_cycles"`
	SimWindows     int     `json:"sim_windows"`

	// The pipelined pass: the same windowed simulation through
	// SimulateStorePiped at the report's PipelineDepth. PipedSpeedup is
	// serial SimSeconds over PipedSeconds; PipedPeakHeap is the
	// boundedness evidence that in-flight windows (not trace length)
	// govern memory.
	PipedSeconds     float64 `json:"piped_seconds"`
	PipedInstsPerSec float64 `json:"piped_insts_per_sec"`
	PipedPeakHeap    int64   `json:"piped_peak_heap_bytes"`
	PipedSpeedup     float64 `json:"piped_speedup"`

	// VmHWM is the process-wide resident high-water mark (KiB, from
	// /proc/self/status) after this stage; 0 where unsupported. It is
	// cumulative across stages — the per-stage sampled peaks are the
	// boundedness evidence, this is the corroborating OS view.
	VmHWMKiB int64 `json:"vm_hwm_kib"`
}

// traceBenchReport is the BENCH_trace.json schema; CI uploads it so the
// trace-substrate throughput trajectory is tracked per commit.
type traceBenchReport struct {
	Schema       string `json:"schema"`
	GoVersion    string `json:"go_version"`
	MaxProcs     int    `json:"maxprocs"`
	Bench        string `json:"bench"`
	Seed         uint64 `json:"seed"`
	ChunkLen     int    `json:"chunk_len"`
	WindowChunks int    `json:"window_chunks"`
	WindowInsts  int64  `json:"window_insts"`
	WindowBytes  int64  `json:"window_bytes"`
	// PipelineDepth is the concurrent-window bound of the piped pass
	// (max(2, GOMAXPROCS)); the piped differential and timings run at
	// this depth.
	PipelineDepth int `json:"pipeline_depth"`
	DiffInsts     int `json:"differential_insts"`

	Stages []traceBenchStage `json:"stages"`
}

// peakHeapDuring runs fn while sampling the live heap and returns the
// largest HeapAlloc observed (sampled at ~5ms, so short allocation
// spikes can slip through; the sweep's stages run for seconds, which is
// plenty of samples).
func peakHeapDuring(fn func() error) (int64, error) {
	var peak atomic.Int64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if h := int64(ms.HeapAlloc); h > peak.Load() {
			peak.Store(h)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	sample()
	err := fn()
	sample()
	close(stop)
	wg.Wait()
	return peak.Load(), err
}

// vmHWM reads the process resident high-water mark in KiB from
// /proc/self/status, or 0 on platforms without it.
func vmHWM() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				kb, _ := strconv.ParseInt(fields[0], 10, 64)
				return kb
			}
		}
	}
	return 0
}

// traceBenchSegment is the fixed machine stack the sweep simulates
// under: 4 clusters, dependence-based steering — the paper's baseline
// geometry, cheap enough that trace paging (not machine bring-up)
// dominates.
func traceBenchSegment(int) (machine.Config, machine.SteerPolicy, machine.Hooks, error) {
	return machine.NewConfig(4), &steer.DepBased{}, machine.Hooks{}, nil
}

// traceBenchDifferential is the pre-timing gate: the streamed path must
// be indistinguishable from the in-memory path — and the pipelined
// streamed path from both — before any throughput means anything.
func traceBenchDifferential(bench string, insts int, seed uint64, windowInsts int64, depth int) error {
	want, err := workload.Generate(bench, insts, seed)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "clustersim-diff-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "t.ctr")
	if err := workload.GenerateToFile(bench, insts, seed, path, trace.WriterOptions{}); err != nil {
		return err
	}
	st, err := trace.Open(path, trace.OpenOptions{})
	if err != nil {
		return err
	}
	defer st.Close()
	got, err := st.Load()
	if err != nil {
		return err
	}
	if got.Len() != want.Len() {
		return fmt.Errorf("differential: streamed %d insts, in-memory %d", got.Len(), want.Len())
	}
	for i := range want.Insts {
		if got.Insts[i] != want.Insts[i] || got.Deps[i] != want.Deps[i] {
			return fmt.Errorf("differential: instruction %d diverged between streamed and in-memory generation", i)
		}
	}
	srGot, err := machine.SimulateStore(st, windowInsts, traceBenchSegment)
	if err != nil {
		return err
	}
	srWant, err := machine.SimulateSliced(want, windowInsts, traceBenchSegment)
	if err != nil {
		return err
	}
	if srGot != srWant {
		return fmt.Errorf("differential: windowed simulation diverged:\nstreaming %+v\nin-memory %+v", srGot, srWant)
	}
	srPiped, err := machine.SimulateStorePiped(st, windowInsts, traceBenchSegment, nil, depth)
	if err != nil {
		return err
	}
	if srPiped != srWant {
		return fmt.Errorf("differential: pipelined simulation (depth %d) diverged:\npiped %+v\nin-memory %+v", depth, srPiped, srWant)
	}
	return nil
}

// runBenchTraceJSON executes the trace-store sweep and writes the
// report. traceDir, when non-empty, holds the generated store files
// (and keeps them); otherwise a temp dir is used and removed.
func runBenchTraceJSON(path, bench string, instsCSV string, seed uint64, traceDir string, windowChunks int) error {
	if bench == "" {
		bench = "gcc"
	}
	var scales []int64
	for _, f := range strings.Split(instsCSV, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -bench-trace-insts entry %q", f)
		}
		scales = append(scales, n)
	}
	if windowChunks <= 0 {
		windowChunks = trace.DefaultWindowChunks
	}
	const chunkLen = trace.DefaultChunkLen
	windowInsts := int64(chunkLen) // one chunk's worth of trace per machine window

	if traceDir == "" {
		dir, err := os.MkdirTemp("", "clustersim-tracebench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		traceDir = dir
	} else if err := os.MkdirAll(traceDir, 0o755); err != nil {
		return err
	}

	depth := runtime.GOMAXPROCS(0)
	if depth < 2 {
		depth = 2
	}

	const diffInsts = 200_000
	fmt.Fprintf(os.Stderr, "tracebench: differential gate (%s, %d insts, pipeline depth %d) ... ", bench, diffInsts, depth)
	if err := traceBenchDifferential(bench, diffInsts, seed, windowInsts, depth); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "ok")

	rep := traceBenchReport{
		Schema:        "clustersim/bench-trace/v1",
		GoVersion:     runtime.Version(),
		MaxProcs:      runtime.GOMAXPROCS(0),
		Bench:         bench,
		Seed:          seed,
		ChunkLen:      chunkLen,
		WindowChunks:  windowChunks,
		WindowInsts:   windowInsts,
		PipelineDepth: depth,
		DiffInsts:     diffInsts,
	}

	for _, n := range scales {
		stage := traceBenchStage{Insts: n}
		file := filepath.Join(traceDir, fmt.Sprintf("%s-%d.ctr", bench, n))

		start := time.Now()
		peak, err := peakHeapDuring(func() error {
			return workload.GenerateToFile(bench, int(n), seed, file, trace.WriterOptions{ChunkLen: chunkLen})
		})
		if err != nil {
			return fmt.Errorf("generate %d: %w", n, err)
		}
		stage.GenSeconds = time.Since(start).Seconds()
		stage.GenInstsPerSec = float64(n) / stage.GenSeconds
		stage.GenPeakHeap = peak
		if fi, err := os.Stat(file); err == nil {
			stage.FileBytes = fi.Size()
		}

		st, err := trace.Open(file, trace.OpenOptions{WindowChunks: windowChunks})
		if err != nil {
			return fmt.Errorf("open %d: %w", n, err)
		}
		rep.WindowBytes = st.WindowBytes()
		if st.Len() < n {
			st.Close()
			return fmt.Errorf("store holds %d insts, requested %d", st.Len(), n)
		}

		start = time.Now()
		var scanned int64
		peak, err = peakHeapDuring(func() error {
			return st.Scan(func(ch *trace.Chunk) error {
				scanned += int64(ch.N)
				return nil
			})
		})
		if err != nil {
			st.Close()
			return fmt.Errorf("scan %d: %w", n, err)
		}
		if scanned != st.Len() {
			st.Close()
			return fmt.Errorf("scan visited %d of %d insts", scanned, st.Len())
		}
		stage.ScanSeconds = time.Since(start).Seconds()
		stage.ScanInstsPerSec = float64(scanned) / stage.ScanSeconds
		stage.ScanPeakHeap = peak

		start = time.Now()
		var sr machine.StreamResult
		peak, err = peakHeapDuring(func() error {
			var err error
			sr, err = machine.SimulateStore(st, windowInsts, traceBenchSegment)
			return err
		})
		if err != nil {
			st.Close()
			return fmt.Errorf("simulate %d: %w", n, err)
		}
		stage.SimSeconds = time.Since(start).Seconds()
		stage.SimInstsPerSec = float64(sr.Insts) / stage.SimSeconds
		stage.SimPeakHeap = peak
		stage.SimCycles = uint64(sr.Cycles)
		stage.SimWindows = sr.Windows

		start = time.Now()
		var srPiped machine.StreamResult
		peak, err = peakHeapDuring(func() error {
			var err error
			srPiped, err = machine.SimulateStorePiped(st, windowInsts, traceBenchSegment, nil, depth)
			return err
		})
		st.Close()
		if err != nil {
			return fmt.Errorf("simulate piped %d: %w", n, err)
		}
		if srPiped != sr {
			return fmt.Errorf("simulate piped %d: result diverged from serial pass:\npiped  %+v\nserial %+v", n, srPiped, sr)
		}
		stage.PipedSeconds = time.Since(start).Seconds()
		stage.PipedInstsPerSec = float64(srPiped.Insts) / stage.PipedSeconds
		stage.PipedPeakHeap = peak
		stage.PipedSpeedup = stage.SimSeconds / stage.PipedSeconds
		stage.VmHWMKiB = vmHWM()

		rep.Stages = append(rep.Stages, stage)
		fmt.Fprintf(os.Stderr,
			"tracebench %8.0fk insts: gen %6.2fs (%5.1fM/s, peak %4dMB) scan %6.2fs (%6.1fM/s, peak %4dMB) sim %7.2fs (%5.2fM/s, peak %4dMB, %d windows) piped %7.2fs (%5.2fM/s, peak %4dMB, %.2fx)\n",
			float64(n)/1e3, stage.GenSeconds, stage.GenInstsPerSec/1e6, stage.GenPeakHeap>>20,
			stage.ScanSeconds, stage.ScanInstsPerSec/1e6, stage.ScanPeakHeap>>20,
			stage.SimSeconds, stage.SimInstsPerSec/1e6, stage.SimPeakHeap>>20, stage.SimWindows,
			stage.PipedSeconds, stage.PipedInstsPerSec/1e6, stage.PipedPeakHeap>>20, stage.PipedSpeedup)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracebench: wrote %s\n", path)
	return nil
}
