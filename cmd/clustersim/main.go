// Command clustersim regenerates the tables and figures of Salverda &
// Zilles, "A Criticality Analysis of Clustering in Superscalar
// Processors" (MICRO 2005).
//
// Usage:
//
//	clustersim [flags] <experiment> [<experiment> ...]
//	clustersim serve [flags]      multi-tenant HTTP job API (see internal/server)
//	clustersim loadbench [flags]  load-test the serve path and write BENCH_serve.json
//
// Experiments:
//
//	config      Table 1 (machine configurations)
//	fig2        idealized list scheduling
//	fig2-attrib convergent-dataflow attribution of Figure 2 (Section 2.2)
//	fig4        focused steering & scheduling slowdowns
//	fig5        critical-path CPI breakdown
//	fig6        contention/forwarding event breakdowns
//	fig8        LoC value distribution
//	fig14       the three policies (l, s, p) and penalty reductions
//	fig15       achieved vs available ILP (8x1w)
//	loc-oracle  Section 4's list-scheduler knowledge study
//	consumers   Section 6's producer/consumer statistics
//	all         everything above, in paper order
//
// Flags:
//
//	-n int         instructions per benchmark (default 200000)
//	-seed uint     workload seed (default 1)
//	-fwd int       inter-cluster forwarding latency (default 2)
//	-benchmarks s  comma-separated subset (default: all twelve)
//	-j int         worker-pool size (default GOMAXPROCS)
//	-cache-dir s   persist traces and results here across runs
//	-cache-mem int in-memory cache budget in MiB (default 1024)
//	-metrics addr  serve /metrics and /debug/pprof on this address
//	-bench-json f  run the machine micro-benchmark sweep and write f
//	               (wakeup vs oracle scheduler; ns/run and allocs/run)
//	-bench-crit-json f  run the critical-path analysis sweep and write f
//	               (fused 16-scenario replay vs per-scenario oracle)
//	-bench-sched-json f  run the list-scheduler sweep and write f
//	               (pooled fused ScheduleVariants vs reference Run)
//	-bench-trace-json f  run the chunked trace-store sweep and write f
//	               (generation/scan/windowed-sim throughput and peak heap
//	               at the -bench-trace-insts scales; the streaming path is
//	               differentially checked against the in-memory path first)
//	-bench-trace-insts s comma-separated scales for the trace sweep
//	               (default 1000000,10000000,100000000)
//	-trace-dir s   keep the sweep's generated store files here
//	-trace-window n  chunks kept resident per open trace store
//
// Robustness flags (see DESIGN.md "Failure model & recovery"):
//
//	-journal f     append completed results to this checkpoint journal
//	               (default <cache-dir>/journal.wal when -resume is set)
//	-resume        replay the journal first and recompute only what is
//	               missing; Ctrl-C + rerun with -resume picks up a sweep
//	               where it died
//	-deadline d    cancel the whole run after this duration; completed
//	               results drain cleanly and the summary still prints
//	-job-deadline d  count (not kill) simulation jobs exceeding this
//	               soft per-job deadline in the engine summary
//	-chaos-seed n  \ deterministic fault injection for testing: inject
//	-chaos-rate p  / I/O errors, short writes, read latency and worker
//	               panics at rate p (results must not change — only the
//	               robustness counters do)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/experiments"
	"clustersim/internal/faultinject"
	"clustersim/internal/metrics"
)

func main() {
	// Subcommands dispatch before the experiment flags parse.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			os.Exit(serveMain(os.Args[2:]))
		case "loadbench":
			os.Exit(loadbenchMain(os.Args[2:]))
		}
	}

	n := flag.Int("n", 200_000, "instructions per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	fwd := flag.Int("fwd", 2, "inter-cluster forwarding latency (cycles)")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset")
	report := flag.String("report", "", "write a single markdown report of all experiments to this file")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker-pool size")
	replayWorkers := flag.Int("replay-workers", 0, "intra-job variant fan-out width (0: a per-job share of GOMAXPROCS); results are byte-identical under any value")
	cacheDir := flag.String("cache-dir", "", "on-disk cache directory for traces and results (empty: memory only)")
	cacheMem := flag.Int64("cache-mem", engine.DefaultMaxCacheBytes>>20, "in-memory cache budget in MiB (<0: unlimited)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	benchJSON := flag.String("bench-json", "", "run the machine micro-benchmark sweep (wakeup vs oracle scheduler) and write its JSON report here")
	benchCritJSON := flag.String("bench-crit-json", "", "run the critical-path analysis sweep (fused multi-scenario replay vs per-scenario oracle) and write its JSON report here")
	benchSchedJSON := flag.String("bench-sched-json", "", "run the list-scheduler sweep (pooled fused ScheduleVariants vs reference Run) and write its JSON report here")
	benchTraceJSON := flag.String("bench-trace-json", "", "run the chunked trace-store sweep (generation/scan/windowed-sim throughput, peak heap) and write its JSON report here")
	benchTraceInsts := flag.String("bench-trace-insts", "1000000,10000000,100000000", "comma-separated instruction scales for -bench-trace-json")
	traceDir := flag.String("trace-dir", "", "directory for -bench-trace-json store files (empty: temp dir, removed after)")
	traceWindow := flag.Int("trace-window", 0, "chunks kept resident per open trace store (0: default, currently 4 chunks of 65536 instructions)")
	journalPath := flag.String("journal", "", "checkpoint journal path (default <cache-dir>/journal.wal when -resume is set)")
	resume := flag.Bool("resume", false, "replay the checkpoint journal and recompute only missing results")
	deadline := flag.Duration("deadline", 0, "cancel the whole run after this duration (0: none)")
	jobDeadline := flag.Duration("job-deadline", 0, "count simulation jobs exceeding this soft deadline (0: none)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-injection seed (testing; used with -chaos-rate)")
	chaosRate := flag.Float64("chaos-rate", 0, "fault-injection probability per site visit (testing; 0: disabled)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: clustersim [flags] <experiment> ...")
		fmt.Fprintln(os.Stderr, "experiments: config fig2 fig2-attrib fig4 fig5 fig6 fig8 fig14 fig14-detail fig15 loc-oracle consumers fwd-sweep stall-sweep slack detector-compare window-sweep bandwidth-sweep replication icost group-steer predictor-sweep workloads future-work all")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *chaosRate > 0 {
		faultinject.Enable(*chaosSeed, *chaosRate)
		fmt.Fprintf(os.Stderr, "clustersim: chaos enabled (seed=%d rate=%g) — results are unaffected, only robustness counters\n",
			*chaosSeed, *chaosRate)
	} else if faultinject.EnableFromEnv() {
		fmt.Fprintln(os.Stderr, "clustersim: chaos enabled from CLUSTERSIM_CHAOS_SEED/RATE")
	}

	reg := metrics.NewRegistry()
	eng := engine.New(engine.Config{
		Workers:           *jobs,
		ReplayWorkers:     *replayWorkers,
		CacheDir:          *cacheDir,
		MaxCacheBytes:     *cacheMem * (1 << 20),
		Metrics:           reg,
		JobDeadline:       *jobDeadline,
		TraceWindowChunks: *traceWindow,
	})
	if err := eng.Summary().DiskErr; err != nil {
		fmt.Fprintf(os.Stderr, "clustersim: disk cache disabled: %v\n", err)
	}

	// Ctrl-C (and -deadline) cancel the run context: in-flight jobs
	// finish, pending ones fail fast, and the summary still renders so a
	// -resume rerun knows what survived.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	eng.SetContext(ctx)

	if *resume || *journalPath != "" {
		path := *journalPath
		if path == "" {
			if *cacheDir != "" {
				path = filepath.Join(*cacheDir, "journal.wal")
			} else {
				path = "clustersim.journal"
			}
		}
		restored, err := eng.OpenJournal(path, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim: journal:", err)
			os.Exit(1)
		}
		defer eng.CloseJournal()
		if *resume {
			fmt.Fprintf(os.Stderr, "clustersim: resumed %d completed results from %s\n", restored, path)
		}
	}
	if *metricsAddr != "" {
		addr, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim: metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (pprof on /debug/pprof)\n", addr)
	}

	opts := experiments.Options{Insts: *n, Seed: *seed, Fwd: *fwd, Engine: eng, ReplayWorkers: *replayWorkers}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *n, *seed, *fwd, opts.Benchmarks); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim: bench-json:", err)
			os.Exit(1)
		}
		return
	}
	if *benchCritJSON != "" {
		if err := runBenchCritJSON(*benchCritJSON, *n, *seed, opts.Benchmarks); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim: bench-crit-json:", err)
			os.Exit(1)
		}
		return
	}
	if *benchSchedJSON != "" {
		if err := runBenchSchedJSON(*benchSchedJSON, *n, *seed, *fwd, opts.Benchmarks); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim: bench-sched-json:", err)
			os.Exit(1)
		}
		return
	}
	if *benchTraceJSON != "" {
		bench := ""
		if len(opts.Benchmarks) > 0 {
			bench = opts.Benchmarks[0]
		}
		if err := runBenchTraceJSON(*benchTraceJSON, bench, *benchTraceInsts, *seed, *traceDir, *traceWindow); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim: bench-trace-json:", err)
			os.Exit(1)
		}
		return
	}

	if *report != "" {
		if err := writeReport(*report, opts); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *report)
		eng.RenderSummary(os.Stderr)
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = []string{"config", "fig2", "fig2-attrib", "fig4", "fig5", "fig6",
			"fig8", "fig14", "fig15", "loc-oracle", "consumers", "fwd-sweep", "stall-sweep",
			"slack", "detector-compare", "window-sweep", "bandwidth-sweep", "replication", "icost", "group-steer", "predictor-sweep", "workloads", "future-work"}
	}
	failed := false
	for _, exp := range args {
		start := time.Now()
		if err := run(exp, opts); err != nil {
			failed = true
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "clustersim: %s: %v\n", exp, err)
				if eng.JournalPath() != "" {
					fmt.Fprintln(os.Stderr, "clustersim: completed results are journaled; rerun with -resume to continue")
				}
				break
			}
			fmt.Fprintf(os.Stderr, "clustersim: %s: %v\n", exp, err)
			break
		}
		fmt.Printf("[%s took %.1fs]\n\n", exp, time.Since(start).Seconds())
	}
	eng.RenderSummary(os.Stderr)
	if err := eng.CloseJournal(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim: journal close:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// fig5Cache shares the expensive focused-policy runs between fig5 and
// fig6 when both are requested in one invocation.
var fig5Cache *experiments.Figure5Result

func fig5(opts experiments.Options) (*experiments.Figure5Result, error) {
	if fig5Cache != nil {
		return fig5Cache, nil
	}
	r, err := experiments.Figure5(opts)
	if err == nil {
		fig5Cache = r
	}
	return r, err
}

func run(exp string, opts experiments.Options) error {
	w := os.Stdout
	switch exp {
	case "config":
		experiments.ConfigTable(w)
	case "fig2":
		r, err := experiments.Figure2(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig2-attrib":
		r, err := experiments.AttributeFigure2(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig4":
		r, err := experiments.Figure4(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig5":
		r, err := fig5(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig6":
		r, err := fig5(opts)
		if err != nil {
			return err
		}
		r.RenderFigure6(w)
	case "fig8":
		r, err := experiments.Figure8(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig14":
		r, err := experiments.Figure14(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig14-detail":
		r, err := experiments.Figure14(opts)
		if err != nil {
			return err
		}
		r.Render(w)
		r.RenderPerBench(w)
	case "fig15":
		r, err := experiments.Figure15(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "loc-oracle":
		r, err := experiments.LoCOracle(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "consumers":
		r, err := experiments.Consumers(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fwd-sweep":
		r, err := experiments.FwdSweep(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "stall-sweep":
		r, err := experiments.StallSweep(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "slack":
		r, err := experiments.SlackStudy(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "detector-compare":
		r, err := experiments.DetectorCompare(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "window-sweep":
		r, err := experiments.WindowSweep(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "bandwidth-sweep":
		r, err := experiments.BandwidthSweep(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "replication":
		r, err := experiments.Replication(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "icost":
		r, err := experiments.ICost(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "group-steer":
		r, err := experiments.GroupSteer(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "predictor-sweep":
		r, err := experiments.PredictorSweep(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "workloads":
		r, err := experiments.Characterize(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	case "future-work":
		r, err := experiments.FutureWork(opts)
		if err != nil {
			return err
		}
		r.Render(w)
	default:
		return fmt.Errorf("unknown experiment (see -h)")
	}
	return nil
}
