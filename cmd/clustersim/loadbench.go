package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/metrics"
	"clustersim/internal/server"
	"clustersim/internal/server/loadgen"
)

// loadbenchReport is the BENCH_serve.json shape: the bench configuration
// plus one loadgen report per phase (cold cache, then warm cache against
// the same server).
type loadbenchReport struct {
	Config struct {
		Clients       int      `json:"clients"`
		JobsPerClient int      `json:"jobs_per_client"`
		DurationSecs  float64  `json:"duration_secs,omitempty"`
		Insts         int      `json:"insts"`
		Benchmarks    []string `json:"benchmarks"`
		Seeds         int      `json:"seeds"`
		UniqueSpecs   int      `json:"unique_specs"`
		Tenants       int      `json:"tenants"`
		Runners       int      `json:"runners"`
		Queue         int      `json:"queue"`
		GOMAXPROCS    int      `json:"gomaxprocs"`

		CrashKills     int     `json:"crash_kills,omitempty"`
		CrashClients   int     `json:"crash_clients,omitempty"`
		CrashJobs      int     `json:"crash_jobs,omitempty"`
		CrashChaosRate float64 `json:"crash_chaos_rate,omitempty"`
	} `json:"config"`
	Cold loadgen.Report `json:"cold"`
	Warm loadgen.Report `json:"warm"`
	// Crash is the kill -9 chaos differential (see loadgen.RunCrash):
	// present when -crash-kills > 0.
	Crash *loadgen.CrashReport `json:"crash,omitempty"`
}

// loadbenchMain runs `clustersim loadbench`: it stands up an in-process
// serve instance (or targets -addr), pre-computes every mix spec's
// expected output locally, then replays the mix from -clients concurrent
// synthetic clients twice — once against a cold cache, once warm — and
// writes the latency/throughput/divergence report to -json. A non-zero
// divergence count is a failure: the served bytes must match local runs.
func loadbenchMain(args []string) int {
	fs := flag.NewFlagSet("loadbench", flag.ExitOnError)
	clients := fs.Int("clients", 1000, "concurrent synthetic clients")
	jobsPer := fs.Int("jobs", 3, "jobs per client per phase (ignored with -duration)")
	duration := fs.Duration("duration", 0, "time-box each phase instead of counting jobs")
	insts := fs.Int("n", 6_000, "instructions per benchmark in the mix")
	benchmarks := fs.String("benchmarks", "gzip,mcf", "comma-separated benchmark subset for the mix")
	seeds := fs.Int("seeds", 4, "distinct workload seeds in the mix (unique specs = 3 x seeds)")
	tenantsN := fs.Int("tenants", 8, "synthetic tenant count (weights cycle 1,2,3)")
	runners := fs.Int("runners", 0, "server job executors (0: GOMAXPROCS)")
	queueMax := fs.Int("queue", 1024, "server queue bound")
	seed := fs.Uint64("seed", 1, "load-mix seed")
	addrFlag := fs.String("addr", "", "benchmark an already-running server at this base URL instead of in-process")
	jsonOut := fs.String("json", "BENCH_serve.json", "write the report here")
	crashKills := fs.Int("crash-kills", 0, "crash-chaos phase: SIGKILL/restart the server this many times mid-load (0: skip)")
	crashEvery := fs.Duration("crash-every", 400*time.Millisecond, "crash-chaos uptime between kills")
	crashClients := fs.Int("crash-clients", 8, "crash-chaos concurrent clients")
	crashJobs := fs.Int("crash-jobs", 2, "crash-chaos jobs per client")
	crashChaosRate := fs.Float64("crash-chaos-rate", 0.05, "fault-injection rate inside the crashed server (job-log and network I/O sites)")
	crashChaosSeed := fs.Uint64("crash-chaos-seed", 1, "fault-injection seed inside the crashed server")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: clustersim loadbench [flags]")
		fmt.Fprintln(os.Stderr, "replays a sweep mix from concurrent synthetic clients and reports latency, throughput and divergence")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	benchList := strings.Split(*benchmarks, ",")

	// The mix: per seed, a fig2-only, a fig4-only, and a combined job —
	// overlapping specs so the shared cache and singleflight matter.
	var mix []server.Spec
	for s := 1; s <= *seeds; s++ {
		for _, exps := range [][]string{{"fig2"}, {"fig4"}, {"fig2", "fig4"}} {
			mix = append(mix, server.Spec{
				Experiments: exps,
				Benchmarks:  benchList,
				Insts:       *insts,
				Seed:        uint64(s),
			})
		}
	}

	// Expected outputs, computed locally on an engine the server never
	// sees: the divergence check compares served bytes against these.
	fmt.Fprintf(os.Stderr, "clustersim loadbench: pre-computing %d unique specs locally\n", len(mix))
	localEng := engine.New(engine.Config{Workers: runtime.GOMAXPROCS(0)})
	expected := map[string][]server.ResultArtifact{}
	for _, sp := range mix {
		if _, ok := expected[sp.Key()]; ok {
			continue
		}
		arts, err := server.RunLocal(sp, localEng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return 1
		}
		expected[sp.Key()] = arts
	}

	tenants := map[string]float64{}
	var tenantNames []string
	for i := 0; i < *tenantsN; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		tenants[name] = float64(1 + i%3)
		tenantNames = append(tenantNames, name)
	}

	baseURL := *addrFlag
	if baseURL == "" {
		reg := metrics.NewRegistry()
		eng := engine.New(engine.Config{Workers: runtime.GOMAXPROCS(0), Metrics: reg})
		srv, err := server.New(server.Config{
			Engine:   eng,
			Metrics:  reg,
			Tenants:  tenants,
			MaxQueue: *queueMax,
			Runners:  *runners,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return 1
		}
		srv.Start()
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return 1
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "clustersim loadbench: in-process server on %s\n", baseURL)
	}

	runPhase := func(name string) (loadgen.Report, bool) {
		fmt.Fprintf(os.Stderr, "clustersim loadbench: %s phase — %d clients\n", name, *clients)
		rep, err := loadgen.Run(loadgen.Config{
			BaseURL:       baseURL,
			Clients:       *clients,
			JobsPerClient: *jobsPer,
			Duration:      *duration,
			Tenants:       tenantNames,
			Specs:         mix,
			Seed:          *seed,
			Expected:      expected,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return rep, false
		}
		fmt.Fprintf(os.Stderr, "  %s: %d jobs in %.1fs (%.1f jobs/s), p50 %.1fms p99 %.1fms, %d errors, %d rejected, %d diverged, sim hit rate %.3f\n",
			name, rep.Jobs, rep.WallSeconds, rep.JobsPerSec, rep.P50Ms, rep.P99Ms,
			rep.Errors, rep.Rejected429, rep.Divergence, rep.SimHitRate)
		return rep, true
	}

	var out loadbenchReport
	out.Config.Clients = *clients
	out.Config.JobsPerClient = *jobsPer
	if *duration > 0 {
		out.Config.DurationSecs = duration.Seconds()
	}
	out.Config.Insts = *insts
	out.Config.Benchmarks = benchList
	out.Config.Seeds = *seeds
	out.Config.UniqueSpecs = len(expected)
	out.Config.Tenants = *tenantsN
	out.Config.Runners = *runners
	out.Config.Queue = *queueMax
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)

	var ok bool
	if out.Cold, ok = runPhase("cold"); !ok {
		return 1
	}
	// Brief settle so the warm phase's stats delta starts clean.
	time.Sleep(100 * time.Millisecond)
	if out.Warm, ok = runPhase("warm"); !ok {
		return 1
	}

	if *crashKills > 0 {
		out.Config.CrashKills = *crashKills
		out.Config.CrashClients = *crashClients
		out.Config.CrashJobs = *crashJobs
		out.Config.CrashChaosRate = *crashChaosRate
		rep, err := runCrashPhase(crashPhaseConfig{
			kills:     *crashKills,
			killEvery: *crashEvery,
			clients:   *crashClients,
			jobsPer:   *crashJobs,
			chaosRate: *crashChaosRate,
			chaosSeed: *crashChaosSeed,
			seed:      *seed,
			tenants:   tenants,
			names:     tenantNames,
			mix:       mix,
			expected:  expected,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return 1
		}
		out.Crash = &rep
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
		return 1
	}
	if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "clustersim loadbench: wrote %s\n", *jsonOut)

	if out.Cold.Divergence+out.Warm.Divergence > 0 {
		fmt.Fprintf(os.Stderr, "clustersim loadbench: FAIL — %d served results diverged from local runs\n",
			out.Cold.Divergence+out.Warm.Divergence)
		return 1
	}
	if out.Cold.Errors+out.Warm.Errors > 0 {
		fmt.Fprintf(os.Stderr, "clustersim loadbench: FAIL — %d client errors\n", out.Cold.Errors+out.Warm.Errors)
		return 1
	}
	if out.Crash != nil {
		switch {
		case out.Crash.Lost > 0:
			fmt.Fprintf(os.Stderr, "clustersim loadbench: FAIL — %d accepted jobs lost across kill -9 restarts\n", out.Crash.Lost)
			return 1
		case out.Crash.Divergence > 0:
			fmt.Fprintf(os.Stderr, "clustersim loadbench: FAIL — %d crash-phase results diverged from local runs\n", out.Crash.Divergence)
			return 1
		case out.Crash.Errors > 0:
			fmt.Fprintf(os.Stderr, "clustersim loadbench: FAIL — %d crash-phase jobs never completed\n", out.Crash.Errors)
			return 1
		}
	}
	return 0
}

// crashPhaseConfig bundles the crash phase's knobs.
type crashPhaseConfig struct {
	kills     int
	killEvery time.Duration
	clients   int
	jobsPer   int
	chaosRate float64
	chaosSeed uint64
	seed      uint64
	tenants   map[string]float64
	names     []string
	mix       []server.Spec
	expected  map[string][]server.ResultArtifact
}

// runCrashPhase runs the kill -9 chaos differential: a real `clustersim
// serve` subprocess (this binary re-exec'd) with a durable job log, a
// shared cache dir, and fault injection enabled, SIGKILLed and restarted
// mid-load while retrying clients drive every accepted job to a
// byte-verified completion.
func runCrashPhase(cfg crashPhaseConfig) (loadgen.CrashReport, error) {
	bin, err := os.Executable()
	if err != nil {
		return loadgen.CrashReport{}, err
	}
	dir, err := os.MkdirTemp("", "clustersim-crash-*")
	if err != nil {
		return loadgen.CrashReport{}, err
	}
	defer os.RemoveAll(dir)

	// A fixed port the restarted server can re-bind: pick a free one up
	// front. (The tiny claim/release race is acceptable for a bench.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.CrashReport{}, err
	}
	addr := ln.Addr().String()
	ln.Close()

	var tenantArgs []string
	for name, w := range cfg.tenants {
		tenantArgs = append(tenantArgs, fmt.Sprintf("%s:%g", name, w))
	}
	proc := &serveProc{
		bin: bin,
		args: []string{
			"serve", "-addr", addr,
			"-job-log", dir + "/joblog",
			"-cache-dir", dir + "/cache",
			"-tenants", strings.Join(tenantArgs, ","),
			"-queue", "1024",
		},
		env: append(os.Environ(),
			fmt.Sprintf("CLUSTERSIM_CHAOS_SEED=%d", cfg.chaosSeed),
			fmt.Sprintf("CLUSTERSIM_CHAOS_RATE=%g", cfg.chaosRate)),
	}
	if err := proc.start(); err != nil {
		return loadgen.CrashReport{}, err
	}
	defer proc.kill()

	fmt.Fprintf(os.Stderr, "clustersim loadbench: crash phase — %d clients, %d kills, chaos rate %g, server on %s\n",
		cfg.clients, cfg.kills, cfg.chaosRate, addr)
	rep, err := loadgen.RunCrash(loadgen.CrashConfig{
		BaseURL:       "http://" + addr,
		Clients:       cfg.clients,
		JobsPerClient: cfg.jobsPer,
		Tenants:       cfg.names,
		Specs:         cfg.mix,
		Seed:          cfg.seed,
		Expected:      cfg.expected,
		Kills:         cfg.kills,
		KillEvery:     cfg.killEvery,
		Kill:          proc.kill,
		Start:         proc.start,
	})
	if err != nil {
		return rep, err
	}
	fmt.Fprintf(os.Stderr, "  crash: %d jobs verified through %d kill -9s (%d retries), %d lost, %d diverged, %d errors in %.1fs\n",
		rep.Jobs, rep.Kills, rep.Retries, rep.Lost, rep.Divergence, rep.Errors, rep.WallSeconds)
	return rep, nil
}

// serveProc manages the crash phase's serve subprocess.
type serveProc struct {
	bin  string
	args []string
	env  []string
	cmd  *exec.Cmd
}

// start launches a fresh serve process against the same log and cache.
func (p *serveProc) start() error {
	cmd := exec.Command(p.bin, p.args...)
	cmd.Env = p.env
	if err := cmd.Start(); err != nil {
		return err
	}
	p.cmd = cmd
	return nil
}

// kill SIGKILLs the current process and reaps it — no drain, no
// warning, exactly the crash the job log exists for.
func (p *serveProc) kill() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return nil
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.cmd = nil
	return nil
}
