package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/metrics"
	"clustersim/internal/server"
	"clustersim/internal/server/loadgen"
)

// loadbenchReport is the BENCH_serve.json shape: the bench configuration
// plus one loadgen report per phase (cold cache, then warm cache against
// the same server).
type loadbenchReport struct {
	Config struct {
		Clients       int      `json:"clients"`
		JobsPerClient int      `json:"jobs_per_client"`
		DurationSecs  float64  `json:"duration_secs,omitempty"`
		Insts         int      `json:"insts"`
		Benchmarks    []string `json:"benchmarks"`
		Seeds         int      `json:"seeds"`
		UniqueSpecs   int      `json:"unique_specs"`
		Tenants       int      `json:"tenants"`
		Runners       int      `json:"runners"`
		Queue         int      `json:"queue"`
		GOMAXPROCS    int      `json:"gomaxprocs"`
	} `json:"config"`
	Cold loadgen.Report `json:"cold"`
	Warm loadgen.Report `json:"warm"`
}

// loadbenchMain runs `clustersim loadbench`: it stands up an in-process
// serve instance (or targets -addr), pre-computes every mix spec's
// expected output locally, then replays the mix from -clients concurrent
// synthetic clients twice — once against a cold cache, once warm — and
// writes the latency/throughput/divergence report to -json. A non-zero
// divergence count is a failure: the served bytes must match local runs.
func loadbenchMain(args []string) int {
	fs := flag.NewFlagSet("loadbench", flag.ExitOnError)
	clients := fs.Int("clients", 1000, "concurrent synthetic clients")
	jobsPer := fs.Int("jobs", 3, "jobs per client per phase (ignored with -duration)")
	duration := fs.Duration("duration", 0, "time-box each phase instead of counting jobs")
	insts := fs.Int("n", 6_000, "instructions per benchmark in the mix")
	benchmarks := fs.String("benchmarks", "gzip,mcf", "comma-separated benchmark subset for the mix")
	seeds := fs.Int("seeds", 4, "distinct workload seeds in the mix (unique specs = 3 x seeds)")
	tenantsN := fs.Int("tenants", 8, "synthetic tenant count (weights cycle 1,2,3)")
	runners := fs.Int("runners", 0, "server job executors (0: GOMAXPROCS)")
	queueMax := fs.Int("queue", 1024, "server queue bound")
	seed := fs.Uint64("seed", 1, "load-mix seed")
	addrFlag := fs.String("addr", "", "benchmark an already-running server at this base URL instead of in-process")
	jsonOut := fs.String("json", "BENCH_serve.json", "write the report here")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: clustersim loadbench [flags]")
		fmt.Fprintln(os.Stderr, "replays a sweep mix from concurrent synthetic clients and reports latency, throughput and divergence")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	benchList := strings.Split(*benchmarks, ",")

	// The mix: per seed, a fig2-only, a fig4-only, and a combined job —
	// overlapping specs so the shared cache and singleflight matter.
	var mix []server.Spec
	for s := 1; s <= *seeds; s++ {
		for _, exps := range [][]string{{"fig2"}, {"fig4"}, {"fig2", "fig4"}} {
			mix = append(mix, server.Spec{
				Experiments: exps,
				Benchmarks:  benchList,
				Insts:       *insts,
				Seed:        uint64(s),
			})
		}
	}

	// Expected outputs, computed locally on an engine the server never
	// sees: the divergence check compares served bytes against these.
	fmt.Fprintf(os.Stderr, "clustersim loadbench: pre-computing %d unique specs locally\n", len(mix))
	localEng := engine.New(engine.Config{Workers: runtime.GOMAXPROCS(0)})
	expected := map[string][]server.ResultArtifact{}
	for _, sp := range mix {
		if _, ok := expected[sp.Key()]; ok {
			continue
		}
		arts, err := server.RunLocal(sp, localEng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return 1
		}
		expected[sp.Key()] = arts
	}

	tenants := map[string]float64{}
	var tenantNames []string
	for i := 0; i < *tenantsN; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		tenants[name] = float64(1 + i%3)
		tenantNames = append(tenantNames, name)
	}

	baseURL := *addrFlag
	if baseURL == "" {
		reg := metrics.NewRegistry()
		eng := engine.New(engine.Config{Workers: runtime.GOMAXPROCS(0), Metrics: reg})
		srv, err := server.New(server.Config{
			Engine:   eng,
			Metrics:  reg,
			Tenants:  tenants,
			MaxQueue: *queueMax,
			Runners:  *runners,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return 1
		}
		srv.Start()
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return 1
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "clustersim loadbench: in-process server on %s\n", baseURL)
	}

	runPhase := func(name string) (loadgen.Report, bool) {
		fmt.Fprintf(os.Stderr, "clustersim loadbench: %s phase — %d clients\n", name, *clients)
		rep, err := loadgen.Run(loadgen.Config{
			BaseURL:       baseURL,
			Clients:       *clients,
			JobsPerClient: *jobsPer,
			Duration:      *duration,
			Tenants:       tenantNames,
			Specs:         mix,
			Seed:          *seed,
			Expected:      expected,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
			return rep, false
		}
		fmt.Fprintf(os.Stderr, "  %s: %d jobs in %.1fs (%.1f jobs/s), p50 %.1fms p99 %.1fms, %d errors, %d rejected, %d diverged, sim hit rate %.3f\n",
			name, rep.Jobs, rep.WallSeconds, rep.JobsPerSec, rep.P50Ms, rep.P99Ms,
			rep.Errors, rep.Rejected429, rep.Divergence, rep.SimHitRate)
		return rep, true
	}

	var out loadbenchReport
	out.Config.Clients = *clients
	out.Config.JobsPerClient = *jobsPer
	if *duration > 0 {
		out.Config.DurationSecs = duration.Seconds()
	}
	out.Config.Insts = *insts
	out.Config.Benchmarks = benchList
	out.Config.Seeds = *seeds
	out.Config.UniqueSpecs = len(expected)
	out.Config.Tenants = *tenantsN
	out.Config.Runners = *runners
	out.Config.Queue = *queueMax
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)

	var ok bool
	if out.Cold, ok = runPhase("cold"); !ok {
		return 1
	}
	// Brief settle so the warm phase's stats delta starts clean.
	time.Sleep(100 * time.Millisecond)
	if out.Warm, ok = runPhase("warm"); !ok {
		return 1
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
		return 1
	}
	if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim loadbench:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "clustersim loadbench: wrote %s\n", *jsonOut)

	if out.Cold.Divergence+out.Warm.Divergence > 0 {
		fmt.Fprintf(os.Stderr, "clustersim loadbench: FAIL — %d served results diverged from local runs\n",
			out.Cold.Divergence+out.Warm.Divergence)
		return 1
	}
	if out.Cold.Errors+out.Warm.Errors > 0 {
		fmt.Fprintf(os.Stderr, "clustersim loadbench: FAIL — %d client errors\n", out.Cold.Errors+out.Warm.Errors)
		return 1
	}
	return 0
}
