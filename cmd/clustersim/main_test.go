package main

import (
	"os"
	"strings"
	"testing"

	"clustersim/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{Insts: 4000, Benchmarks: []string{"vpr"}}
}

func TestRunAllExperimentNames(t *testing.T) {
	for _, exp := range []string{
		"config", "fig2", "fig2-attrib", "fig4", "fig5", "fig6", "fig8",
		"fig14", "fig14-detail", "fig15", "loc-oracle", "consumers", "fwd-sweep",
		"stall-sweep", "slack", "detector-compare", "window-sweep",
		"bandwidth-sweep", "replication", "icost", "group-steer", "predictor-sweep", "workloads", "future-work",
	} {
		if err := run(exp, tinyOpts()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("nope", tinyOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig6ReusesFig5Runs(t *testing.T) {
	fig5Cache = nil
	if err := run("fig5", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if fig5Cache == nil {
		t.Fatal("fig5 did not populate the cache")
	}
	cached := fig5Cache
	if err := run("fig6", tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if fig5Cache != cached {
		t.Error("fig6 re-ran the fig5 simulations")
	}
}

func TestWriteReport(t *testing.T) {
	path := t.TempDir() + "/report.md"
	if err := writeReport(path, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# clustersim results report", "Figure 14", "Figure 2", "ablation"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
