package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"clustersim/internal/listsched"
	"clustersim/internal/machine"
	"clustersim/internal/predictor"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// schedBenchPoint is one benchmark row of the list-scheduler sweep: the
// pooled fused ScheduleVariants engine against the reference Run path,
// both covering the same 13-variant set (monolithic baseline plus
// 2/4/8 clusters under the oracle, LoC and binary priorities — the
// Figure 2 and Section 4 workload fused into one batch).
type schedBenchPoint struct {
	Bench    string `json:"bench"`
	Insts    int    `json:"insts"`
	Variants int    `json:"variants"`
	Runs     int    `json:"runs"`

	FusedNsPerRun  float64 `json:"fused_ns_per_run"`
	OracleNsPerRun float64 `json:"oracle_ns_per_run"`
	Speedup        float64 `json:"speedup"`

	FusedAllocsPerRun  float64 `json:"fused_allocs_per_run"`
	OracleAllocsPerRun float64 `json:"oracle_allocs_per_run"`
	AllocRatio         float64 `json:"alloc_ratio"`
}

// schedBenchReport is the BENCH_listsched.json schema; CI uploads it so
// the scheduling-throughput trajectory is tracked per commit.
type schedBenchReport struct {
	Schema            string            `json:"schema"`
	GoVersion         string            `json:"go_version"`
	Insts             int               `json:"insts"`
	Seed              uint64            `json:"seed"`
	Variants          int               `json:"variants"`
	Points            []schedBenchPoint `json:"points"`
	GeomeanSpeedup    float64           `json:"geomean_speedup"`
	GeomeanAllocRatio float64           `json:"geomean_alloc_ratio"`
}

// schedBenchVariants builds the 13-variant workload over a harvest. The
// LoC/binary priorities train a deterministic exact tracker from the
// oracle's own marks, so the sweep needs no detector-instrumented run.
func schedBenchVariants(in listsched.Input, fwd int) ([]listsched.Variant, error) {
	oracle := listsched.NewOracle(in)
	exact := predictor.NewExact()
	var maxKey int64
	n := in.Trace.Len()
	for i := 0; i < n; i++ {
		if k := oracle.Key(int64(i), 0); k > maxKey {
			maxKey = k
		}
	}
	for i := 0; i < n; i++ {
		exact.Train(in.Trace.Insts[i].PC, oracle.Key(int64(i), 0) > maxKey/2)
	}
	loc16, err := listsched.NewLoCPriority(exact, 16)
	if err != nil {
		return nil, err
	}
	locUnl, err := listsched.NewLoCPriority(exact, 0)
	if err != nil {
		return nil, err
	}
	binary, err := listsched.NewBinaryPriority(exact, 0)
	if err != nil {
		return nil, err
	}
	cfg := func(clusters int) listsched.Config {
		mc := machine.NewConfig(clusters)
		mc.FwdLatency = fwd
		return listsched.ConfigFor(mc)
	}
	variants := []listsched.Variant{{Config: cfg(1), Pri: oracle}}
	for _, k := range []int{2, 4, 8} {
		for _, pri := range []listsched.Priority{oracle, loc16, locUnl, binary} {
			variants = append(variants, listsched.Variant{Config: cfg(k), Pri: pri})
		}
	}
	return variants, nil
}

// runBenchSchedJSON executes the list-scheduler sweep and writes the
// report. Fused and reference schedules are cross-checked for exact
// equality (and validated with listsched.Check) on every point before
// timing, so the sweep doubles as a differential gate.
func runBenchSchedJSON(path string, insts int, seed uint64, fwd int, benches []string) error {
	if len(benches) == 0 {
		benches = []string{"gzip", "vpr", "gcc", "mcf"}
	}
	rep := schedBenchReport{
		Schema:    "clustersim/bench-listsched/v1",
		GoVersion: runtime.Version(),
		Insts:     insts,
		Seed:      seed,
	}
	logSpeed := 0.0
	logAlloc := 0.0
	for _, bench := range benches {
		tr, err := workload.Generate(bench, insts, seed)
		if err != nil {
			return err
		}
		m, err := machine.New(machine.NewConfig(1), tr, steer.DepBased{}, machine.Hooks{})
		if err != nil {
			return err
		}
		m.Run()
		in := listsched.FromMachineRun(m)
		variants, err := schedBenchVariants(in, fwd)
		if err != nil {
			return err
		}
		rep.Variants = len(variants)

		// Differential gate before timing anything.
		sch := listsched.NewScheduler()
		fast, err := sch.ScheduleVariants(in, variants)
		if err != nil {
			return err
		}
		for j, v := range variants {
			want, err := listsched.Run(in, v.Config, v.Pri)
			if err != nil {
				return err
			}
			if err := listsched.Check(in, v.Config, fast[j]); err != nil {
				return fmt.Errorf("%s variant %d: %v", bench, j, err)
			}
			if fast[j].Makespan != want.Makespan || fast[j].CrossEdges != want.CrossEdges ||
				fast[j].DyadicCross != want.DyadicCross {
				return fmt.Errorf("%s variant %d: fused (%d,%d,%d) != reference (%d,%d,%d)",
					bench, j, fast[j].Makespan, fast[j].CrossEdges, fast[j].DyadicCross,
					want.Makespan, want.CrossEdges, want.DyadicCross)
			}
			for i := range want.Start {
				if fast[j].Start[i] != want.Start[i] || fast[j].Cluster[i] != want.Cluster[i] {
					return fmt.Errorf("%s variant %d: schedules diverge at instruction %d", bench, j, i)
				}
			}
		}
		sch.Recycle()

		fused := func() {
			s := listsched.NewScheduler()
			if _, err := s.ScheduleVariants(in, variants); err != nil {
				panic(err)
			}
			s.Recycle()
		}
		reference := func() {
			for _, v := range variants {
				if _, err := listsched.Run(in, v.Config, v.Pri); err != nil {
					panic(err)
				}
			}
		}
		fNs, fAllocs, runs := measure(fused, 3, 150*time.Millisecond)
		oNs, oAllocs, _ := measure(reference, 3, 150*time.Millisecond)

		pt := schedBenchPoint{
			Bench: bench, Insts: insts, Variants: len(variants),
			Runs:          runs,
			FusedNsPerRun: fNs, OracleNsPerRun: oNs,
			Speedup:           oNs / fNs,
			FusedAllocsPerRun: fAllocs, OracleAllocsPerRun: oAllocs,
			AllocRatio:        oAllocs / math.Max(fAllocs, 1),
		}
		rep.Points = append(rep.Points, pt)
		logSpeed += math.Log(pt.Speedup)
		logAlloc += math.Log(pt.AllocRatio)
		fmt.Fprintf(os.Stderr, "schedbench %-6s: fused %.2fms reference %.2fms speedup %.2fx allocs %.0f vs %.0f (%.0fx)\n",
			bench, fNs/1e6, oNs/1e6, pt.Speedup, fAllocs, oAllocs, pt.AllocRatio)
	}
	n := float64(len(rep.Points))
	rep.GeomeanSpeedup = math.Exp(logSpeed / n)
	rep.GeomeanAllocRatio = math.Exp(logAlloc / n)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "geomean speedup %.2fx, geomean alloc ratio %.1fx -> %s\n",
		rep.GeomeanSpeedup, rep.GeomeanAllocRatio, path)
	return nil
}
