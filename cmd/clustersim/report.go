package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"clustersim/internal/experiments"
)

// allExperiments is the report order: paper figures first, then the
// in-text studies, then ablations and extensions.
var allExperiments = []struct {
	name  string
	title string
}{
	{"config", "Table 1 — machine configurations"},
	{"workloads", "Workload characterization"},
	{"fig2", "Figure 2 — idealized list scheduling"},
	{"fig2-attrib", "Section 2.2 — convergent-dataflow attribution"},
	{"fig4", "Figure 4 — focused steering & scheduling"},
	{"fig5", "Figure 5 — critical-path breakdown"},
	{"fig6", "Figure 6 — contention and forwarding events"},
	{"fig8", "Figure 8 — LoC distribution"},
	{"fig14", "Figure 14 — the three policies"},
	{"fig15", "Figure 15 — achieved vs available ILP"},
	{"loc-oracle", "Section 4 — list-scheduler knowledge study"},
	{"consumers", "Section 6 — producer/consumer analysis"},
	{"slack", "Slack analysis (Fields '02)"},
	{"icost", "Interaction costs (Fields '03)"},
	{"detector-compare", "Detectors — epoch-graph vs token-passing"},
	{"group-steer", "Section 8 — steering-circuit complexity"},
	{"fwd-sweep", "Forwarding-latency sensitivity"},
	{"stall-sweep", "Stall-threshold ablation"},
	{"window-sweep", "Window-partition ablation"},
	{"bandwidth-sweep", "Bypass-bandwidth ablation"},
	{"predictor-sweep", "Predictor-capacity ablation"},
	{"replication", "Footnote 4 — instruction replication"},
	{"future-work", "Future work — readiness-aware balancing"},
}

// writeReport runs every experiment and writes one markdown document.
func writeReport(path string, opts experiments.Options) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# clustersim results report\n\n")
	fmt.Fprintf(&buf, "Reproduction of Salverda & Zilles, MICRO 2005. ")
	fmt.Fprintf(&buf, "Parameters: %d instructions/benchmark, seed %d, %d-cycle forwarding.\n",
		opts.Insts, opts.Seed, opts.Fwd)
	for _, exp := range allExperiments {
		fmt.Fprintf(&buf, "\n## %s\n\n```\n", exp.title)
		start := time.Now()
		// run prints to stdout; capture via a pipe-free redirect by
		// temporarily swapping the writer used in run().
		out, err := captureRun(exp.name, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.name, err)
		}
		buf.WriteString(out)
		fmt.Fprintf(&buf, "```\n\n_%s took %.1fs._\n", exp.name, time.Since(start).Seconds())
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// captureRun runs one experiment and returns its rendered output.
func captureRun(exp string, opts experiments.Options) (string, error) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		return "", err
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				b.Write(buf[:n])
			}
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	runErr := run(exp, opts)
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}
