package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestSlowLorisCutByReadHeaderTimeout: a client trickling an incomplete
// header block must be disconnected at ReadHeaderTimeout instead of
// pinning a connection forever — the classic slow-loris hold-open.
func TestSlowLorisCutByReadHeaderTimeout(t *testing.T) {
	hs := newHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), 200*time.Millisecond, 0, time.Minute)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Partial headers, never finished: the server must hang up on us.
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\nX-Slow:")
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	_, err = io.ReadAll(conn)
	elapsed := time.Since(start)
	if err != nil {
		if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatalf("server never closed the slow-loris connection (still open after %s)", elapsed)
		}
		// A reset is as good as a close for this test.
	}
	if elapsed > 5*time.Second {
		t.Fatalf("slow-loris connection lived %s, want cut near the 200ms ReadHeaderTimeout", elapsed)
	}

	// A well-behaved request on the same server still succeeds.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after slow-loris: HTTP %d", resp.StatusCode)
	}
}

// TestHTTPServerTimeoutsWired: the serve flags land on the http.Server
// fields, and WriteTimeout deliberately stays 0 (SSE streams are
// long-lived; dead clients are reaped by the heartbeat instead).
func TestHTTPServerTimeoutsWired(t *testing.T) {
	hs := newHTTPServer(http.NotFoundHandler(), 1*time.Second, 2*time.Second, 3*time.Second)
	if hs.ReadHeaderTimeout != 1*time.Second || hs.ReadTimeout != 2*time.Second || hs.IdleTimeout != 3*time.Second {
		t.Fatalf("timeouts not wired: %+v", hs)
	}
	if hs.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout = %s, must stay 0 for SSE", hs.WriteTimeout)
	}
}
