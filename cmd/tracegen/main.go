// Command tracegen generates and inspects synthetic benchmark traces.
//
// Usage:
//
//	tracegen -bench vpr -n 100000 -o vpr.trace     # write a trace file
//	tracegen -inspect vpr.trace                    # summarize a trace file
//	tracegen -bench vpr -n 100000                  # summarize without writing
//	tracegen -list                                 # list benchmarks
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersim/internal/isa"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark to generate")
	n := flag.Int("n", 100_000, "instructions to generate")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("o", "", "output trace file")
	inspect := flag.String("inspect", "", "trace file to summarize")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if err := run(*bench, *n, *seed, *out, *inspect, *list); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(bench string, n int, seed uint64, out, inspect string, list bool) error {
	switch {
	case list:
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return nil
	case inspect != "":
		f, err := os.Open(inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		summarize(inspect, tr)
		return nil
	case bench != "":
		tr, err := workload.Generate(bench, n, seed)
		if err != nil {
			return err
		}
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := trace.Write(f, tr); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %d instructions to %s\n", tr.Len(), out)
		}
		summarize(bench, tr)
		return nil
	}
	return fmt.Errorf("nothing to do: pass -bench, -inspect or -list (see -h)")
}

func summarize(name string, tr *trace.Trace) {
	s := tr.Summarize()
	fmt.Printf("%s: %d instructions\n", name, s.Total)
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if s.Count[op] == 0 {
			continue
		}
		fmt.Printf("  %-8s %8d (%5.1f%%)\n", op, s.Count[op], s.Frac(op)*100)
	}
	if s.Branches > 0 {
		fmt.Printf("  branches taken: %.1f%%\n", float64(s.Taken)/float64(s.Branches)*100)
	}
	pcs := map[uint64]bool{}
	for i := range tr.Insts {
		pcs[tr.Insts[i].PC] = true
	}
	fmt.Printf("  static footprint: %d PCs\n", len(pcs))
}
