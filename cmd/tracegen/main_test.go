package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateWriteInspect(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "vpr.trace")
	if err := run("vpr", 2000, 1, out, "", false); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
	if err := run("", 0, 0, "", out, false); err != nil {
		t.Fatalf("inspect failed: %v", err)
	}
}

func TestList(t *testing.T) {
	if err := run("", 0, 0, "", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", 0, 0, "", "", false); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run("nope", 100, 1, "", "", false); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run("", 0, 0, "", "/nonexistent/file", false); err == nil {
		t.Error("missing trace file accepted")
	}
	if err := run("vpr", 100, 1, "/nonexistent/dir/x.trace", "", false); err == nil {
		t.Error("unwritable output accepted")
	}
}
