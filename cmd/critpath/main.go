// Command critpath simulates one benchmark on one configuration and
// prints the critical-path attribution (the raw material of Figures 5
// and 6), plus run statistics.
//
// Usage:
//
//	critpath -bench gzip -clusters 8 -policy stall-over-steer -n 200000
//	critpath -trace vpr.trace -clusters 4 -policy focused
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"clustersim"
	"clustersim/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark to generate and run")
	traceFile := flag.String("trace", "", "trace file to run instead of -bench")
	n := flag.Int("n", 200_000, "instructions (with -bench)")
	seed := flag.Uint64("seed", 1, "seed")
	clusters := flag.Int("clusters", 4, "cluster count (1, 2, 4 or 8)")
	policy := flag.String("policy", "focused", "steering policy")
	pcs := flag.Int("pcs", 0, "also print the N most critical static instructions")
	flag.Parse()

	if err := run(*bench, *traceFile, *n, *seed, *clusters, *policy, *pcs); err != nil {
		fmt.Fprintln(os.Stderr, "critpath:", err)
		os.Exit(1)
	}
}

func run(bench, traceFile string, n int, seed uint64, clusters int, policy string, pcs int) error {
	var tr *clustersim.Trace
	var err error
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			return err
		}
	case bench != "":
		tr, err = clustersim.GenerateTrace(bench, n, seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("pass -bench or -trace (see -h)")
	}

	sim, err := clustersim.NewSim(clustersim.NewConfig(clusters), tr,
		clustersim.SimOptions{Policy: policy, Seed: seed, TrackExact: pcs > 0})
	if err != nil {
		return err
	}
	res := sim.Run()
	a, err := sim.CriticalPath()
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s with %s: %d insts, %d cycles, CPI %.3f, IPC %.2f\n",
		bench+traceFile, res.ConfigName, res.PolicyName, res.Insts, res.Cycles, res.CPI(), res.IPC())
	fmt.Printf("branches: %d (%.2f%% mispredicted); L1 miss rate %.2f%%; global values/inst %.3f\n",
		res.Branches, res.MispredictRate()*100, res.L1MissRate*100, res.GlobalValuesPerInst())
	fmt.Println("critical-path attribution (CPI contribution):")
	ni := float64(res.Insts)
	b := a.Breakdown
	for _, row := range []struct {
		name string
		v    int64
	}{
		{"fwd delay", b.FwdDelay}, {"contention", b.Contention}, {"execute", b.Execute},
		{"mem latency", b.MemLatency}, {"fetch", b.Fetch}, {"window", b.Window},
		{"br mispredict", b.BrMispredict}, {"commit", b.Commit},
	} {
		fmt.Printf("  %-14s %7.3f\n", row.name, float64(row.v)/ni)
	}
	if b.Boundary != 0 {
		// Windowed walks book pre-window residue here; a whole-run walk
		// never does, so the row only appears when it carries cycles.
		fmt.Printf("  %-14s %7.3f\n", "boundary", float64(b.Boundary)/ni)
	}
	fmt.Printf("  %-14s %7.3f\n", "total", float64(b.Total())/ni)
	fmt.Printf("contention stalls on path: %d critical, %d other; fwd events: %d loadbal, %d dyadic, %d other\n",
		a.ContentionCritical, a.ContentionOther, a.FwdLoadBal, a.FwdDyadic, a.FwdOther)
	fmt.Printf("steering: %d local, %d dyadic, %d load-balanced, %d proactive, %d no-pref; %d stall cycles\n",
		res.SteerCounts[1], res.SteerCounts[3], res.SteerCounts[2],
		res.SteerCounts[4], res.SteerCounts[0], res.SteerStallCycles)
	if pcs > 0 {
		printTopPCs(sim, tr, pcs)
	}
	return nil
}

// printTopPCs lists the most critical static instructions by observed
// criticality frequency, with their op and dynamic instance counts.
func printTopPCs(sim *clustersim.Sim, tr *clustersim.Trace, n int) {
	exact := sim.Exact()
	if exact == nil {
		return
	}
	type row struct {
		pc   uint64
		frac float64
		seen uint64
	}
	var rows []row
	for _, pc := range exact.PCs() {
		rows = append(rows, row{pc, exact.Frac(pc), exact.Seen(pc)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].frac != rows[j].frac {
			return rows[i].frac > rows[j].frac
		}
		return rows[i].pc < rows[j].pc
	})
	// Find a representative op per PC.
	ops := map[uint64]string{}
	for i := range tr.Insts {
		if _, ok := ops[tr.Insts[i].PC]; !ok {
			ops[tr.Insts[i].PC] = tr.Insts[i].Op.String()
		}
	}
	if n > len(rows) {
		n = len(rows)
	}
	fmt.Printf("top %d static instructions by likelihood of criticality:\n", n)
	fmt.Printf("%-10s %-8s %10s %8s\n", "pc", "op", "instances", "LoC")
	for _, r := range rows[:n] {
		fmt.Printf("%#-10x %-8s %10d %7.1f%%\n", r.pc, ops[r.pc], r.seen, r.frac*100)
	}
}
