package main

import (
	"os"
	"path/filepath"
	"testing"

	"clustersim"
	"clustersim/internal/trace"
)

func TestRunBenchmark(t *testing.T) {
	if err := run("gzip", "", 3000, 1, 8, "stall-over-steer", 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	tr, err := clustersim.GenerateTrace("vpr", 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("", path, 0, 1, 4, "focused", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 100, 1, 4, "focused", 0); err == nil {
		t.Error("no input accepted")
	}
	if err := run("nope", "", 100, 1, 4, "focused", 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run("vpr", "", 100, 1, 4, "bogus", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run("", "/nonexistent", 0, 1, 4, "focused", 0); err == nil {
		t.Error("missing trace accepted")
	}
}
