package clustersim_test

import (
	"fmt"
	"log"

	"clustersim"
)

// The four machine configurations partition Table 1's monolithic 8-wide
// machine.
func ExampleNewConfig() {
	for _, k := range []int{1, 2, 4, 8} {
		cfg := clustersim.NewConfig(k)
		fmt.Printf("%s: window/cluster=%d mem-ports/cluster=%d\n",
			cfg.Name(), cfg.WindowPerCluster, cfg.MemPerCluster)
	}
	// Output:
	// 1x8w: window/cluster=128 mem-ports/cluster=4
	// 2x4w: window/cluster=64 mem-ports/cluster=2
	// 4x2w: window/cluster=32 mem-ports/cluster=1
	// 8x1w: window/cluster=16 mem-ports/cluster=1
}

// The twelve synthetic workloads carry the SPEC2000 integer names.
func ExampleBenchmarks() {
	names := clustersim.Benchmarks()
	fmt.Println(len(names), names[0], names[len(names)-1])
	// Output: 12 bzip2 vpr
}

// A complete measurement: clustered vs monolithic CPI plus critical-path
// attribution of the difference.
func ExampleNewSim() {
	tr, err := clustersim.GenerateTrace("gzip", 50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := clustersim.NewSim(clustersim.NewConfig(8), tr,
		clustersim.SimOptions{Policy: "stall-over-steer"})
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run()
	a, err := sim.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d instructions; attribution covers runtime: %v\n",
		res.Insts, a.Breakdown.Total() > 0)
	// Output: ran 50004 instructions; attribution covers runtime: true
}

// The idealized study (Figure 2): list-schedule a monolithic run's trace
// onto a clustered configuration.
func ExampleSim_IdealizedSchedule() {
	tr, err := clustersim.GenerateTrace("eon", 20_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	mono, err := clustersim.NewSim(clustersim.NewConfig(1), tr,
		clustersim.SimOptions{Policy: "depbased"})
	if err != nil {
		log.Fatal(err)
	}
	mono.Run()
	s1, err := mono.IdealizedSchedule(clustersim.NewConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	s8, err := mono.IdealizedSchedule(clustersim.NewConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idealized 8x1w within 5%% of monolithic: %v\n",
		float64(s8.Makespan) < 1.05*float64(s1.Makespan))
	// Output: idealized 8x1w within 5% of monolithic: true
}
